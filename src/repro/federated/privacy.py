"""Privacy analysis utilities — quantifying what broadcasts leak.

The paper's central motivation is that cloud-aggregated training "remains
vulnerable to training data recreation attacks by model inversion"
(citing Geiping et al.).  This module makes that concrete for the models
in this library, and provides the standard mitigation knob:

- :func:`rank1_input_reconstruction` — the classic gradient-inversion
  primitive: a linear layer's single-example gradient is the rank-1
  outer product ``x · δᵀ``, so the input ``x`` is recoverable (up to
  scale) as the top left-singular vector of the weight delta.  This is
  exactly what a malicious aggregator can run on per-client updates.
- :func:`reconstruction_similarity` — |cosine| between the recovered and
  true inputs (1.0 = perfect leak).
- :func:`gaussian_mechanism` — additive Gaussian noise on a weight list
  (the DP-style mitigation), plus :func:`clip_then_noise` implementing
  the usual clip-to-norm + noise recipe.

The accompanying tests demonstrate the attack succeeding on raw updates
and degrading under the mechanism — the quantitative version of the
paper's Table 2 "Data Privacy" column.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.rng import as_generator

__all__ = [
    "rank1_input_reconstruction",
    "reconstruction_similarity",
    "gaussian_mechanism",
    "clip_then_noise",
    "leakage_of_update",
]


def rank1_input_reconstruction(weight_delta: np.ndarray) -> np.ndarray:
    """Recover the (scale-normalised) input behind a rank-1 weight update.

    For a linear map ``y = xᵀW`` trained by one gradient step on one
    example, ``ΔW ∝ x δᵀ``; the top left-singular vector of ``ΔW`` is
    ``x / ‖x‖`` (up to sign).  Works approximately for small batches,
    which is why federated updates leak.
    """
    delta = np.asarray(weight_delta, dtype=np.float64)
    if delta.ndim != 2:
        raise ValueError("weight_delta must be a 2-D array")
    u, s, _vt = np.linalg.svd(delta, full_matrices=False)
    x_hat = u[:, 0]
    # Canonical sign: make the largest-magnitude component positive.
    i = int(np.argmax(np.abs(x_hat)))
    if x_hat[i] < 0:
        x_hat = -x_hat
    return x_hat


def reconstruction_similarity(x_true: np.ndarray, x_hat: np.ndarray) -> float:
    """|cosine similarity| between the true input and the reconstruction."""
    x_true = np.asarray(x_true, dtype=np.float64).ravel()
    x_hat = np.asarray(x_hat, dtype=np.float64).ravel()
    if x_true.shape != x_hat.shape:
        raise ValueError("inputs must align")
    denom = np.linalg.norm(x_true) * np.linalg.norm(x_hat)
    if denom == 0:
        return 0.0
    return float(abs(x_true @ x_hat) / denom)


def gaussian_mechanism(
    weights: Sequence[np.ndarray],
    noise_std: float,
    seed: int | np.random.Generator | None = 0,
) -> list[np.ndarray]:
    """Additive isotropic Gaussian noise on every array (DP-style)."""
    if noise_std < 0:
        raise ValueError("noise_std must be >= 0")
    rng = as_generator(seed)
    return [
        np.asarray(w, dtype=np.float64) + rng.normal(0.0, noise_std, size=np.shape(w))
        for w in weights
    ]


def clip_then_noise(
    weights: Sequence[np.ndarray],
    clip_norm: float,
    noise_std: float,
    seed: int | np.random.Generator | None = 0,
) -> list[np.ndarray]:
    """Clip the global L2 norm, then add Gaussian noise (the DP-SGD recipe
    applied at the model-broadcast granularity)."""
    if clip_norm <= 0:
        raise ValueError("clip_norm must be > 0")
    arrays = [np.asarray(w, dtype=np.float64) for w in weights]
    total = float(np.sqrt(sum((a**2).sum() for a in arrays)))
    scale = 1.0 if total <= clip_norm or total == 0 else clip_norm / total
    return gaussian_mechanism([a * scale for a in arrays], noise_std, seed)


def leakage_of_update(
    weights_before: np.ndarray,
    weights_after: np.ndarray,
    x_true: np.ndarray,
) -> float:
    """End-to-end leak score of one observed linear-layer update.

    What a malicious aggregator computes: difference the two snapshots it
    received, run the inversion, compare with the (attacker-unknown)
    ground truth for scoring.
    """
    delta = np.asarray(weights_after, dtype=np.float64) - np.asarray(
        weights_before, dtype=np.float64
    )
    if not np.any(delta):
        return 0.0
    return reconstruction_similarity(x_true, rank1_input_reconstruction(delta))
