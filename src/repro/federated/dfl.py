"""Algorithm 1 — Decentralized Federated Learning for load forecasting.

Each residence's agent holds one forecaster per device type.  Simulated
time advances day by day; within a day, local training happens on the
stream segments between broadcast events (period β), and at each event
every agent broadcasts each device model's weights to its topology
neighbours and averages what it received with its own (per device type).

Three sharing modes cover the paper's comparison column "Load
Forecasting" (Table 2):

- ``"decentralized"`` — the paper's DFL: full-mesh broadcast, local
  aggregation (no server).
- ``"centralized"``  — classic FL: star topology through a central hub
  (the cloud), with up/downlink accounting.
- ``"local"``        — no communication at all.
- ``"cloud"``        — the pre-FL baseline: raw windows are pooled at the
  hub, one global model per device type is trained there and pushed to
  every client (``data_bytes_uploaded`` records the privacy cost).

Features: the lag window of normalised power plus the target's
minute-of-day phase (see
:func:`repro.forecast.features.augment_time_features`).  Evaluation uses
the paper's next-hour energy accuracy
(:func:`repro.metrics.accuracy.horizon_energy_accuracy`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import FaultConfig, FederationConfig, ForecastConfig
from repro.data.dataset import NeighborhoodDataset
from repro.federated.faults import FaultyBus, ReceiveFilter, make_bus
from repro.federated.scheduler import BroadcastScheduler
from repro.federated.topology import make_topology
from repro.forecast import Forecaster, make_forecaster, make_windows, normalize_power
from repro.forecast.features import augment_time_features
from repro.metrics.accuracy import horizon_energy_accuracy
from repro.nn.serialization import average_weights
from repro.obs.telemetry import Telemetry, ensure_telemetry
from repro.parallel import ParallelConfig, parallel_map
from repro.rng import hash_seed

__all__ = ["DFLClient", "DFLTrainer", "DFLRoundResult"]


def _fit_forecaster(task: tuple["Forecaster", "np.ndarray", "np.ndarray"]):
    """Process-pool worker: fit a forecaster on its prepared pairs.

    Pure function of its arguments (the forecaster carries its own RNG
    state), so serial and parallel execution produce identical results.
    """
    forecaster, X, y = task
    loss = forecaster.fit(X, y)
    return loss, forecaster


class DFLClient:
    """One residence's forecasting agent: a model per device type."""

    def __init__(
        self,
        residence_id: int,
        series: dict[str, np.ndarray],
        config: ForecastConfig,
        minutes_per_day: int = 1440,
        seed: int = 0,
    ) -> None:
        self.residence_id = residence_id
        self.series = {d: np.asarray(s, dtype=np.float64) for d, s in series.items()}
        self.config = config
        self.minutes_per_day = int(minutes_per_day)
        self.forecasters: dict[str, Forecaster] = {}
        #: Next stream minute whose window has not been consumed yet —
        #: lets arbitrarily short training segments accumulate until a
        #: full (window + horizon) span is available instead of being
        #: dropped (crucial for sub-hour broadcast periods).
        self._cursor: dict[str, int] = {}
        for device in self.series:
            kwargs: dict = {"n_extra": config.n_extra}
            if config.model != "lr":
                kwargs["seed"] = hash_seed(seed, "fc", residence_id, device)
            self.forecasters[device] = make_forecaster(
                config.model, config.window, config.horizon, **kwargs
            )
            self._cursor[device] = 0

    @property
    def device_types(self) -> tuple[str, ...]:
        return tuple(self.series)

    # ------------------------------------------------------------------
    def _features(
        self, series: np.ndarray, t0: int, stride: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Windows + targets + offsets with the configured featurisation."""
        cfg = self.config
        X, y, offsets = make_windows(
            series, cfg.window, cfg.horizon, stride=stride, return_offsets=True
        )
        if cfg.time_features and X.shape[0] > 0:
            X = augment_time_features(
                X, offsets, self.minutes_per_day, t0=t0, harmonics=cfg.time_harmonics
            )
        elif cfg.time_features:
            X = np.zeros((0, cfg.input_dim))
        return X, y, offsets

    def prepare_segment(
        self, device: str, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Pure featurisation of the stream segment up to minute *stop*.

        Returns the (X, y) training pairs for all windows whose targets
        start at or after the device's cursor, plus the cursor value that
        consuming them would produce.  Does not mutate the client — the
        split from :meth:`train_segment` lets a process pool fit the
        forecasters remotely while the driver owns the cursors.
        """
        series = self.series[device]
        stop = min(stop, series.shape[0])
        base = max(0, self._cursor[device] - self.config.window)
        chunk = series[base:stop]
        X, y, offsets = self._features(chunk, t0=base, stride=self.config.stride)
        if X.shape[0] == 0:
            return X, y, self._cursor[device]
        new_cursor = base + int(offsets[-1]) + self.config.stride
        return X, y, new_cursor

    def train_segment(self, device: str, start: int, stop: int) -> float:
        """Fit the device model on the stream up to minute *stop*.

        Consumes all windows whose targets start at or after the device's
        cursor (which may lag *start* when earlier segments were too short
        to form a window); the window lookback may reach before the
        cursor (history is known).  Returns NaN when still not enough
        data has accumulated.
        """
        X, y, new_cursor = self.prepare_segment(device, start, stop)
        if X.shape[0] == 0:
            return float("nan")
        self._cursor[device] = new_cursor
        return self.forecasters[device].fit(X, y)

    def state_dict(self) -> dict:
        """Full client state: per-device forecasters plus stream cursors."""
        return {
            "cursor": dict(self._cursor),
            "forecasters": {d: f.state_dict() for d, f in self.forecasters.items()},
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        cursor = state["cursor"]
        forecasters = state["forecasters"]
        if set(forecasters) != set(self.forecasters):
            raise ValueError(
                f"device set mismatch: snapshot has {sorted(forecasters)}, "
                f"client has {sorted(self.forecasters)}"
            )
        for device, fstate in forecasters.items():
            self.forecasters[device].load_state_dict(fstate)
        self._cursor = {d: int(cursor[d]) for d in self.forecasters}

    def get_weights(self, device: str) -> list[np.ndarray]:
        return self.forecasters[device].get_weights()

    def set_weights(self, device: str, weights: list[np.ndarray]) -> None:
        self.forecasters[device].set_weights(weights)

    def predict_series(
        self, device: str, series: np.ndarray, t0: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Non-overlapping next-horizon predictions over *series*.

        Returns ``(pred, real, offsets)`` with pred/real of shape
        ``(n, horizon)`` (normalised units, predictions clipped to >= 0).
        """
        X, y, offsets = self._features(
            np.asarray(series, dtype=np.float64), t0=t0, stride=self.config.horizon
        )
        if X.shape[0] == 0:
            h = self.config.horizon
            return np.zeros((0, h)), np.zeros((0, h)), offsets
        pred = np.clip(self.forecasters[device].predict(X), 0.0, None)
        return pred, y, offsets


@dataclass
class DFLRoundResult:
    """Outcome of one simulated day of DFL training."""

    day: int
    mean_train_loss: float
    n_broadcast_events: int
    n_messages: int
    n_params_sent: int
    per_device_loss: dict[str, float] = field(default_factory=dict)
    #: Cumulative fault-fabric observability (0 on a reliable link):
    #: aggregations skipped for lack of quorum and link-level retries.
    n_quorum_skipped: int = 0
    n_retransmits: int = 0


class DFLTrainer:
    """Drives Algorithm 1 over a :class:`NeighborhoodDataset`.

    Parameters
    ----------
    dataset:
        The *training* portion of the data (chronological split upstream).
    forecast_config / federation_config:
        Model and broadcast settings (β, topology).
    mode:
        ``"decentralized"`` | ``"centralized"`` | ``"local"`` | ``"cloud"``.
    n_workers:
        >1 fans the per-(residence, device) local fits out over a process
        pool between broadcast barriers (the residences are independent
        there by construction).  Results are bit-identical to serial.
    compressor:
        Optional broadcast compressor (``repro.federated.compression``);
        decentralized-mode payloads pass through a compress/decompress
        round trip (simulating the wire) and ``compressed_bytes`` tracks
        the actual bytes transmitted.
    fault_config:
        Optional communication-fault model (``repro.config.FaultConfig``).
        Active faults apply to the decentralized broadcast path: lossy
        links with bounded retransmission, corruption (quarantined before
        averaging), delayed deliveries (staleness-discounted, rejected
        past the horizon), churn/stragglers, and quorum-gated rounds.
        ``None`` or an all-zero config keeps the original reliable bus,
        bit-identical to the fault-free implementation.
    """

    def __init__(
        self,
        dataset: NeighborhoodDataset,
        forecast_config: ForecastConfig | None = None,
        federation_config: FederationConfig | None = None,
        mode: str = "decentralized",
        seed: int = 0,
        n_workers: int = 1,
        compressor=None,
        fault_config: FaultConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if mode not in ("decentralized", "centralized", "local", "cloud"):
            raise ValueError(f"unknown mode {mode!r}")
        self.dataset = dataset
        self.forecast_config = forecast_config or ForecastConfig()
        self.federation_config = federation_config or FederationConfig()
        self.mode = mode
        self.seed = seed

        self.clients = [
            DFLClient(
                res.residence_id,
                {
                    dev: normalize_power(trace.power_kw, trace.on_kw)
                    for dev, trace in res
                },
                self.forecast_config,
                minutes_per_day=dataset.minutes_per_day,
                seed=seed,
            )
            for res in dataset.residences
        ]
        n = len(self.clients)
        topo_name = (
            "star" if mode in ("centralized", "cloud") else self.federation_config.topology
        )
        self.topology = make_topology(topo_name if mode != "local" else "full", n)
        # Faults model the residential mesh; the centralized/cloud
        # baselines keep the paper's ideal uplink.
        self.fault_config = (
            fault_config
            if (fault_config is not None and fault_config.active and mode == "decentralized")
            else None
        )
        self.bus = make_bus(self.topology, self.fault_config)
        self.scheduler = BroadcastScheduler(
            self.federation_config.beta_hours, dataset.minutes_per_day
        )
        self._minutes_trained = 0
        self.parallel = ParallelConfig(n_workers=max(1, n_workers))
        self.compressor = compressor
        #: Bytes actually transmitted when a compressor is active.
        self.compressed_bytes = 0
        #: Raw feature bytes shipped to the hub (cloud mode's privacy cost).
        self.data_bytes_uploaded = 0
        self.telemetry = ensure_telemetry(telemetry)
        #: Recovery mode: each agent's last durable snapshot, replayed
        #: into the client when churn brings it back online (a reboot
        #: loses RAM).  ``None`` when the mode is off.
        self._agent_snapshots: dict[int, dict] | None = None
        if self.fault_config is not None and self.fault_config.recover_from_snapshot:
            self._agent_snapshots = {
                c.residence_id: c.state_dict() for c in self.clients
            }

    # ------------------------------------------------------------------
    @property
    def device_types(self) -> tuple[str, ...]:
        return self.dataset.device_types

    @property
    def minutes_trained(self) -> int:
        return self._minutes_trained

    def run_day(self) -> DFLRoundResult:
        """Train one more simulated day (local segments + broadcasts)."""
        mpd = self.dataset.minutes_per_day
        day = self._minutes_trained // mpd
        start = self._minutes_trained
        stop = min(start + mpd, self.dataset.n_minutes)
        if stop <= start:
            raise RuntimeError("dataset exhausted: no more days to train on")

        tel = self.telemetry
        day_t0 = tel.now()
        params_before = self.bus.stats.n_tx_params
        quorum_before = self.bus.stats.n_quorum_skips
        events = self.scheduler.events_in(start, stop).tolist()
        boundaries = [start, *events, stop]
        losses: dict[str, list[float]] = {d: [] for d in self.device_types}
        n_events = 0
        for lo, hi in zip(boundaries[:-1], boundaries[1:]):
            if hi > lo:
                with tel.timer("dfl.local"):
                    if self.mode == "cloud":
                        for device in self.device_types:
                            loss = self._cloud_train_segment(device, lo, hi)
                            if np.isfinite(loss):
                                losses[device].append(loss)
                    else:
                        self._train_interval(lo, hi, losses)
            if hi in events:
                round_t0 = tel.now()
                round_params = self.bus.stats.n_tx_params
                round_quorum = self.bus.stats.n_quorum_skips
                with tel.timer("dfl.broadcast"):
                    self._broadcast_and_aggregate()
                tel.event(
                    "dfl.round",
                    day=day,
                    round=n_events,
                    params_tx=self.bus.stats.n_tx_params - round_params,
                    quorum_skips=self.bus.stats.n_quorum_skips - round_quorum,
                    seconds=tel.now() - round_t0,
                )
                n_events += 1

        self._minutes_trained = stop
        per_device = {
            d: (float(np.mean(v)) if v else float("nan")) for d, v in losses.items()
        }
        finite = [v for v in per_device.values() if np.isfinite(v)]
        result = DFLRoundResult(
            day=day,
            mean_train_loss=float(np.mean(finite)) if finite else float("nan"),
            n_broadcast_events=n_events,
            n_messages=self.bus.stats.n_messages,
            n_params_sent=self.bus.stats.n_params,
            per_device_loss=per_device,
            n_quorum_skipped=self.bus.stats.n_quorum_skips,
            n_retransmits=self.bus.stats.n_retransmits,
        )
        if tel:
            tel.event(
                "dfl.day",
                day=day,
                residences=len(self.clients),
                rounds=n_events,
                seconds=tel.now() - day_t0,
                params_tx=self.bus.stats.n_tx_params - params_before,
                quorum_skips=self.bus.stats.n_quorum_skips - quorum_before,
                loss=result.mean_train_loss,
            )
            tel.add_work(
                "dfl.broadcast",
                params_tx=self.bus.stats.n_tx_params - params_before,
            )
            tel.record_transport(self.bus.stats, prefix="dfl.transport")
            tel.record_links(self.bus.stats, prefix="dfl.transport")
            monitor = getattr(self.bus, "monitor", None)
            if monitor is not None:
                tel.record_selfheal(monitor, prefix="dfl.selfheal")
        return result

    def run(self, n_days: int) -> list[DFLRoundResult]:
        """Train *n_days* consecutive days, returning per-day results."""
        return [self.run_day() for _ in range(n_days)]

    # ------------------------------------------------------------------
    # Persistence
    def state(self) -> dict:
        """Complete trainer state as a checkpointable tree."""
        state: dict = {
            "minutes_trained": self._minutes_trained,
            "compressed_bytes": self.compressed_bytes,
            "data_bytes_uploaded": self.data_bytes_uploaded,
            "clients": {str(c.residence_id): c.state_dict() for c in self.clients},
            "bus": self.bus.state_dict(),
        }
        if self._agent_snapshots is not None:
            state["snapshots"] = {
                str(rid): snap for rid, snap in self._agent_snapshots.items()
            }
        return state

    def restore(self, state: dict) -> None:
        """Restore :meth:`state` output; continuing is bit-identical."""
        self._minutes_trained = int(state["minutes_trained"])
        self.compressed_bytes = int(state["compressed_bytes"])
        self.data_bytes_uploaded = int(state["data_bytes_uploaded"])
        clients = state["clients"]
        for client in self.clients:
            client.load_state_dict(clients[str(client.residence_id)])
        self.bus.load_state_dict(state["bus"])
        if "snapshots" in state and self._agent_snapshots is not None:
            self._agent_snapshots = {
                int(rid): snap for rid, snap in state["snapshots"].items()
            }

    # ------------------------------------------------------------------
    def _train_interval(
        self, lo: int, hi: int, losses: dict[str, list[float]]
    ) -> None:
        """Local fits for every (residence, device), serial or pooled."""
        tasks: list[tuple[int, str]] = [
            (ci, device)
            for ci, client in enumerate(self.clients)
            for device in client.device_types
        ]
        if self.parallel.effective_workers(len(tasks)) <= 1:
            for ci, device in tasks:
                loss = self.clients[ci].train_segment(device, lo, hi)
                if np.isfinite(loss):
                    losses[device].append(loss)
            return

        payloads = []
        cursors = []
        live: list[tuple[int, str]] = []
        for ci, device in tasks:
            client = self.clients[ci]
            X, y, new_cursor = client.prepare_segment(device, lo, hi)
            if X.shape[0] == 0:
                continue
            payloads.append((client.forecasters[device], X, y))
            cursors.append(new_cursor)
            live.append((ci, device))
        if not payloads:
            return
        results = parallel_map(_fit_forecaster, payloads, self.parallel)
        for (ci, device), new_cursor, (loss, forecaster) in zip(live, cursors, results):
            client = self.clients[ci]
            client.forecasters[device] = forecaster
            client._cursor[device] = new_cursor
            if np.isfinite(loss):
                losses[device].append(loss)

    # ------------------------------------------------------------------
    def _cloud_train_segment(self, device: str, lo: int, hi: int) -> float:
        """Cloud baseline: pool every client's raw windows at the hub.

        One global model (held by client 0's forecaster slot) trains on
        the concatenated windows and is copied to everyone.  The raw
        feature upload is tallied in ``data_bytes_uploaded`` — the privacy
        cost Table 2 marks with an ✗.
        """
        Xs, ys = [], []
        for client in self.clients:
            series = client.series[device]
            start = max(0, lo - self.forecast_config.window)
            chunk = series[start : min(hi, series.shape[0])]
            X, y, _ = client._features(chunk, t0=start, stride=self.forecast_config.stride)
            if X.shape[0]:
                Xs.append(X)
                ys.append(y)
                if client.residence_id != 0:
                    self.data_bytes_uploaded += (X.nbytes + y.nbytes)
        if not Xs:
            return float("nan")
        X_all = np.concatenate(Xs)
        y_all = np.concatenate(ys)
        hub = self.clients[0]
        loss = hub.forecasters[device].fit(X_all, y_all)
        weights = hub.get_weights(device)
        for client in self.clients[1:]:
            client.set_weights(device, weights)
        return loss

    def _broadcast_and_aggregate(self) -> None:
        if self.mode in ("local", "cloud"):
            return
        if self.mode == "centralized":
            self._central_round()
            return
        if self.fault_config is not None:
            self._faulty_round()
            return
        # Decentralized: everyone broadcasts, then everyone aggregates the
        # models it received per device type together with its own.
        for client in self.clients:
            for device in client.device_types:
                payload = client.get_weights(device)
                if self.compressor is not None:
                    wire = self.compressor.compress(payload)
                    self.compressed_bytes += wire.nbytes
                    payload = self.compressor.decompress(wire)
                self.bus.broadcast(client.residence_id, payload, tag=f"fc/{device}")
        for client in self.clients:
            for device in client.device_types:
                received = [
                    list(m.payload)
                    for m in self.bus.collect(client.residence_id, tag=f"fc/{device}")
                ]
                if not received:
                    continue
                merged = average_weights([client.get_weights(device), *received])
                client.set_weights(device, merged)

    def _faulty_round(self) -> None:
        """Decentralized round over the fault-injected fabric.

        Crashed agents are off the air; stragglers skip sending this
        round (they still listen).  Receivers quarantine corrupted
        payloads, discount/reject stale ones, and only aggregate when the
        quorum of expected neighbours was heard — otherwise they continue
        on their local model and the skip is counted.
        """
        bus = self.bus
        assert isinstance(bus, FaultyBus)
        faults = self.fault_config
        for client in self.clients:
            if not bus.sends_this_round(client.residence_id):
                continue
            for device in client.device_types:
                payload = client.get_weights(device)
                if self.compressor is not None:
                    wire = self.compressor.compress(payload)
                    self.compressed_bytes += wire.nbytes
                    payload = self.compressor.decompress(wire)
                bus.broadcast(client.residence_id, payload, tag=f"fc/{device}")
        for client in self.clients:
            rid = client.residence_id
            if not bus.is_online(rid):
                continue  # an offline agent aggregates nothing
            n_expected = len(self.topology.neighbors(rid))
            for device in client.device_types:
                local = client.get_weights(device)
                recv = ReceiveFilter(bus, faults, local, n_expected).admit(
                    bus.collect(rid, tag=f"fc/{device}")
                )
                if not recv.accept():
                    continue
                merged = average_weights(
                    [local, *recv.payloads],
                    client_weights=recv.client_weights(),
                )
                client.set_weights(device, merged)
        bus.advance_round()
        self._restore_recovered()

    def _restore_recovered(self) -> None:
        """Recovery mode: reload snapshots for agents back from a crash.

        An agent that just flipped offline -> online lost its RAM; its
        state reverts to the last snapshot taken while it was alive.
        Afterwards every currently-online agent re-snapshots (crashed
        agents keep their stale snapshot — that is the point).
        """
        if self._agent_snapshots is None:
            return
        bus = self.bus
        assert isinstance(bus, FaultyBus)
        by_rid = {c.residence_id: c for c in self.clients}
        for rid in bus.drain_recovered():
            client = by_rid.get(rid)
            if client is None:
                continue
            client.load_state_dict(self._agent_snapshots[rid])
            bus.stats.n_restores += 1
            self.telemetry.count("dfl.recovery.restores")
        for rid, client in by_rid.items():
            if bus.is_online(rid):
                self._agent_snapshots[rid] = client.state_dict()

    def _central_round(self) -> None:
        """Classic FedAvg through agent 0 acting as the cloud hub."""
        hub = 0
        for device in self.device_types:
            all_weights = [c.get_weights(device) for c in self.clients]
            # Account for the uplink/downlink through the star topology:
            # every non-hub client sends up and receives down one model.
            for client in self.clients:
                if client.residence_id != hub:
                    self.bus.send(
                        client.residence_id, hub, client.get_weights(device),
                        tag=f"fc-up/{device}",
                    )
            merged = average_weights(all_weights)
            for client in self.clients:
                if client.residence_id != hub:
                    self.bus.send(hub, client.residence_id, merged, tag=f"fc-down/{device}")
                client.set_weights(device, merged)
            self.bus.collect(hub)
            for client in self.clients:
                self.bus.collect(client.residence_id)

    # ------------------------------------------------------------------
    def evaluate(
        self,
        test_dataset: NeighborhoodDataset,
        test_start_minute: int | None = None,
        return_offsets: bool = False,
    ):
        """Per-(residence, device) next-hour energy accuracy on held-out data.

        ``test_start_minute`` anchors the test split's calendar phase
        (defaults to the minutes already consumed in training, i.e. the
        test data directly follows the train data).  With
        ``return_offsets=True`` also returns the target-start offsets
        (minute indices within the test split) for calendar bucketing.
        """
        t0 = self._minutes_trained if test_start_minute is None else test_start_minute
        acc: dict[tuple[int, str], np.ndarray] = {}
        offs: dict[tuple[int, str], np.ndarray] = {}
        floor = self.forecast_config.accuracy_floor
        for client, res in zip(self.clients, test_dataset.residences):
            for device, trace in res:
                series = normalize_power(trace.power_kw, trace.on_kw)
                pred, real, offsets = client.predict_series(device, series, t0=t0)
                if pred.shape[0] == 0:
                    continue
                acc[(client.residence_id, device)] = horizon_energy_accuracy(
                    pred, real, floor_fraction=floor, scale=1.0
                )
                offs[(client.residence_id, device)] = offsets
        if return_offsets:
            return acc, offs
        return acc

    def mean_accuracy(self, test_dataset: NeighborhoodDataset) -> float:
        """Grand mean accuracy over all residences/devices/samples."""
        acc = self.evaluate(test_dataset)
        if not acc:
            return float("nan")
        return float(np.mean([a.mean() for a in acc.values()]))
