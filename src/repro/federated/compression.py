"""Broadcast compression — communication-efficiency extensions.

The paper's Fig. 14 argument is that PFDRL wins on broadcast volume by
*layer selection* (α of 8 layers).  Two orthogonal, composable
compressors push the same axis further, as the future-work section of a
federated system would:

- :class:`TopKSparsifier` — keep only the k largest-magnitude entries of
  each array (plus their indices on the wire); the classic
  gradient-sparsification scheme.
- :class:`UniformQuantizer` — quantise values to ``bits``-bit levels
  over each array's observed range (two float64 scale factors per array
  travel alongside).

Both provide ``compress -> payload`` and ``decompress -> arrays`` with
byte accounting, and both are *lossy-but-bounded*: round-trip error is
bounded by construction and asserted in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["CompressedPayload", "TopKSparsifier", "UniformQuantizer", "compression_ratio"]


@dataclass(frozen=True)
class CompressedPayload:
    """Wire representation of one compressed weight list."""

    kind: str
    #: Opaque per-array blobs: whatever the compressor needs to invert.
    blobs: tuple
    #: Template shapes for reconstruction.
    shapes: tuple
    nbytes: int

    @property
    def n_arrays(self) -> int:
        return len(self.blobs)


def _raw_nbytes(weights: Sequence[np.ndarray]) -> int:
    return sum(int(np.asarray(w).size) * 8 for w in weights)


def compression_ratio(weights: Sequence[np.ndarray], payload: CompressedPayload) -> float:
    """Raw bytes / compressed bytes (>1 means the compressor helped)."""
    raw = _raw_nbytes(weights)
    return raw / payload.nbytes if payload.nbytes else float("inf")


class TopKSparsifier:
    """Keep the k largest-magnitude entries per array.

    Wire cost per array: k values (8 B) + k int32 indices (4 B).
    ``fraction`` sets k as a fraction of each array's size (at least 1).
    """

    kind = "topk"

    def __init__(self, fraction: float) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = float(fraction)

    def compress(self, weights: Sequence[np.ndarray]) -> CompressedPayload:
        blobs = []
        shapes = []
        nbytes = 0
        for w in weights:
            arr = np.asarray(w, dtype=np.float64)
            flat = arr.ravel()
            k = max(1, int(round(self.fraction * flat.size)))
            idx = np.argpartition(np.abs(flat), -k)[-k:].astype(np.int32)
            vals = flat[idx]
            blobs.append((idx, vals))
            shapes.append(arr.shape)
            nbytes += k * 8 + k * 4
        return CompressedPayload(self.kind, tuple(blobs), tuple(shapes), nbytes)

    def decompress(self, payload: CompressedPayload) -> list[np.ndarray]:
        if payload.kind != self.kind:
            raise ValueError(f"payload kind {payload.kind!r} != {self.kind!r}")
        out = []
        for (idx, vals), shape in zip(payload.blobs, payload.shapes):
            flat = np.zeros(int(np.prod(shape)) if shape else 1)
            flat[idx] = vals
            out.append(flat.reshape(shape))
        return out


class UniformQuantizer:
    """Uniform ``bits``-bit quantisation over each array's range.

    Wire cost per array: size * bits / 8 + two float64 scale factors.
    Round-trip error is at most half a quantisation step per entry.
    """

    kind = "quant"

    def __init__(self, bits: int = 8) -> None:
        if not 1 <= bits <= 16:
            raise ValueError("bits must be in [1, 16]")
        self.bits = int(bits)
        self.levels = (1 << bits) - 1

    def compress(self, weights: Sequence[np.ndarray]) -> CompressedPayload:
        blobs = []
        shapes = []
        nbytes = 0
        for w in weights:
            arr = np.asarray(w, dtype=np.float64)
            lo = float(arr.min()) if arr.size else 0.0
            hi = float(arr.max()) if arr.size else 0.0
            span = hi - lo
            if span == 0.0:
                codes = np.zeros(arr.shape, dtype=np.uint16)
            else:
                codes = np.round((arr - lo) / span * self.levels).astype(np.uint16)
            blobs.append((codes, lo, hi))
            shapes.append(arr.shape)
            nbytes += int(np.ceil(arr.size * self.bits / 8)) + 16
        return CompressedPayload(self.kind, tuple(blobs), tuple(shapes), nbytes)

    def decompress(self, payload: CompressedPayload) -> list[np.ndarray]:
        if payload.kind != self.kind:
            raise ValueError(f"payload kind {payload.kind!r} != {self.kind!r}")
        out = []
        for (codes, lo, hi), shape in zip(payload.blobs, payload.shapes):
            span = hi - lo
            if span == 0.0:
                out.append(np.full(shape, lo, dtype=np.float64))
            else:
                out.append((codes.astype(np.float64) / self.levels * span + lo).reshape(shape))
        return out

    def max_roundtrip_error(self, weights: Sequence[np.ndarray]) -> float:
        """Upper bound on |w - decompress(compress(w))| per entry."""
        worst = 0.0
        for w in weights:
            arr = np.asarray(w, dtype=np.float64)
            if arr.size:
                worst = max(worst, float(arr.max() - arr.min()) / self.levels / 2 * 1.0001)
        return worst
