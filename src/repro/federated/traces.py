"""Replayable link-failure traces (LinkGuardian-style burst faults).

The i.i.d. fault model in :class:`~repro.config.FaultConfig` draws every
message's fate independently; production networks instead fail in
*bursts* — a link degrades for minutes-to-hours with some loss rate and
is then repaired.  Following LinkGuardian's trace-generator design
(SIGCOMM'23, Appendix D), this module expands a
:class:`~repro.config.TraceConfig` against a concrete
:class:`~repro.federated.topology.Topology` into a
:class:`FaultTrace`: a sorted sequence of
``(round, link, loss_rate, duration)`` episodes, stamped with a digest
of the topology it was generated for.

The digest is validated whenever a trace is attached to a fabric or
loaded from disk (mirroring the config-digest resume guard in
:meth:`repro.core.system.PFDRLSystem.resume_from`): replaying a trace
against a different topology would silently misattribute failures, so it
raises :class:`TraceDigestError` instead.

Generation is a pure function of ``(TraceConfig, Topology)`` — the same
seed replays the identical trace, which is what makes monitor-on vs
monitor-off comparisons (``repro.experiments.selfheal``) exact: both
runs see the *same* failures at the same rounds.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.config import TraceConfig
from repro.federated.topology import Topology
from repro.rng import hash_seed

__all__ = [
    "TraceEpisode",
    "FaultTrace",
    "FaultTraceGenerator",
    "TraceDigestError",
    "topology_digest",
]

#: On-disk format version for :meth:`FaultTrace.save`.
TRACE_FORMAT_VERSION = 1


class TraceDigestError(ValueError):
    """A trace is being replayed against a topology it was not made for."""


def topology_digest(topology: Topology) -> str:
    """SHA-256 fingerprint of a topology's name, size and edge set."""
    blob = json.dumps(
        {
            "name": topology.name,
            "n_agents": topology.n_agents,
            "edges": sorted(tuple(sorted(e)) for e in topology.graph.edges),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class TraceEpisode:
    """One burst: link (``src``, ``dst``) is lossy for ``duration`` rounds.

    ``round`` is the first broadcast round the episode is active in;
    the episode covers rounds ``[round, round + duration)``.  While
    active, deliveries over the link drop with ``loss_rate`` and corrupt
    with ``corrupt_rate`` (both replacing the global i.i.d. rates).
    """

    round: int
    src: int
    dst: int
    loss_rate: float
    duration: int
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.round < 0 or self.duration < 1:
            raise ValueError("episode needs round >= 0 and duration >= 1")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if not 0.0 <= self.corrupt_rate < 1.0:
            raise ValueError("corrupt_rate must be in [0, 1)")

    @property
    def link(self) -> tuple[int, int]:
        """Canonical (undirected) link key."""
        return (self.src, self.dst) if self.src <= self.dst else (self.dst, self.src)

    @property
    def end_round(self) -> int:
        """First round the episode is no longer active in."""
        return self.round + self.duration


@dataclass(frozen=True)
class FaultTrace:
    """A replayable failure schedule for one topology.

    Episodes are sorted by ``(round, src, dst)`` so a single cursor can
    replay them; ``topology_sha256`` stamps the topology the trace was
    generated for and is validated by :meth:`validate` before replay.
    """

    episodes: tuple[TraceEpisode, ...]
    topology_sha256: str
    n_rounds: int
    topology_name: str = ""
    n_agents: int = 0

    def __post_init__(self) -> None:
        order = [(e.round, e.src, e.dst) for e in self.episodes]
        if order != sorted(order):
            raise ValueError("episodes must be sorted by (round, src, dst)")

    def __len__(self) -> int:
        return len(self.episodes)

    def validate(self, topology: Topology) -> "FaultTrace":
        """Refuse replay against a topology the trace was not made for."""
        actual = topology_digest(topology)
        if actual != self.topology_sha256:
            raise TraceDigestError(
                "fault trace was generated for a different topology "
                f"(digest {self.topology_sha256[:12]}… vs {actual[:12]}…); "
                "replaying it here would misattribute link failures"
            )
        return self

    def digest(self) -> str:
        """SHA-256 over the full episode list — the checkpoint guard.

        Captured in :meth:`repro.federated.faults.FaultyBus.state_dict`
        so a resume under a *different* trace is refused rather than
        silently diverging.
        """
        blob = json.dumps(
            {
                "topology": self.topology_sha256,
                "n_rounds": self.n_rounds,
                "episodes": [
                    [e.round, e.src, e.dst, e.loss_rate, e.duration, e.corrupt_rate]
                    for e in self.episodes
                ],
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def active_at(self, round: int) -> dict[tuple[int, int], TraceEpisode]:
        """The episodes covering *round*, keyed by canonical link."""
        return {
            e.link: e
            for e in self.episodes
            if e.round <= round < e.end_round
        }

    def mean_loss_rate(self) -> float:
        """Episode-weighted mean loss rate (0.0 for an empty trace)."""
        if not self.episodes:
            return 0.0
        return float(np.mean([e.loss_rate for e in self.episodes]))

    # ------------------------------------------------------------------
    # On-disk format: one JSON document carrying the topology stamp so a
    # simulator can check the trace matches the network it runs on.
    def save(self, path: str | Path) -> Path:
        """Write the trace (with its topology stamp) as a JSON file."""
        path = Path(path)
        doc = {
            "format_version": TRACE_FORMAT_VERSION,
            "topology": {
                "sha256": self.topology_sha256,
                "name": self.topology_name,
                "n_agents": self.n_agents,
            },
            "n_rounds": self.n_rounds,
            "episodes": [
                {
                    "round": e.round,
                    "src": e.src,
                    "dst": e.dst,
                    "loss_rate": e.loss_rate,
                    "duration": e.duration,
                    "corrupt_rate": e.corrupt_rate,
                }
                for e in self.episodes
            ],
        }
        path.write_text(json.dumps(doc, indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path, topology: Topology | None = None) -> "FaultTrace":
        """Read a trace; with *topology* given, validate its digest too."""
        doc = json.loads(Path(path).read_text())
        version = doc.get("format_version")
        if version != TRACE_FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version!r}")
        trace = cls(
            episodes=tuple(
                TraceEpisode(
                    round=int(e["round"]),
                    src=int(e["src"]),
                    dst=int(e["dst"]),
                    loss_rate=float(e["loss_rate"]),
                    duration=int(e["duration"]),
                    corrupt_rate=float(e.get("corrupt_rate", 0.0)),
                )
                for e in doc["episodes"]
            ),
            topology_sha256=str(doc["topology"]["sha256"]),
            n_rounds=int(doc["n_rounds"]),
            topology_name=str(doc["topology"].get("name", "")),
            n_agents=int(doc["topology"].get("n_agents", 0)),
        )
        if topology is not None:
            trace.validate(topology)
        return trace


class FaultTraceGenerator:
    """Expand a :class:`~repro.config.TraceConfig` into a :class:`FaultTrace`.

    Per link (in sorted edge order, so the schedule is independent of
    graph iteration quirks): failure inter-arrivals are exponential with
    mean ``mttf_rounds``, episode durations exponential with mean
    ``repair_rounds`` (floored at one round), and episode loss rates are
    drawn log-uniform in ``[loss_rate_min, loss_rate_max]``.  Every draw
    comes from one generator seeded from ``TraceConfig.seed`` — the same
    config and topology always produce the identical trace.
    """

    def __init__(self, topology: Topology, config: TraceConfig) -> None:
        self.topology = topology
        self.config = config

    def generate(self) -> FaultTrace:
        """The deterministic trace for this (topology, config) pair."""
        cfg = self.config
        rng = np.random.default_rng(hash_seed(cfg.seed, "fault-trace"))
        log_lo = np.log(cfg.loss_rate_min)
        log_hi = np.log(cfg.loss_rate_max)
        episodes: list[TraceEpisode] = []
        for src, dst in sorted(tuple(sorted(e)) for e in self.topology.graph.edges):
            t = 0.0
            while True:
                t += 1.0 + rng.exponential(cfg.mttf_rounds)
                start = int(t)
                if start >= cfg.n_rounds:
                    break
                duration = max(1, int(round(rng.exponential(cfg.repair_rounds))))
                duration = min(duration, cfg.n_rounds - start)
                loss = float(np.exp(rng.uniform(log_lo, log_hi)))
                episodes.append(
                    TraceEpisode(
                        round=start,
                        src=src,
                        dst=dst,
                        loss_rate=loss,
                        duration=duration,
                        corrupt_rate=cfg.corrupt_fraction * loss,
                    )
                )
                t = float(start + duration)
        episodes.sort(key=lambda e: (e.round, e.src, e.dst))
        return FaultTrace(
            episodes=tuple(episodes),
            topology_sha256=topology_digest(self.topology),
            n_rounds=cfg.n_rounds,
            topology_name=self.topology.name,
            n_agents=self.topology.n_agents,
        )
