"""``repro.obs`` — lightweight, dependency-free run observability.

Two cooperating pieces:

- :class:`Telemetry` — an in-memory registry of counters, gauges and
  labelled timers (absorbing :class:`repro.metrics.timing.Stopwatch`),
  threaded through the hot paths (``DFLTrainer``, ``PFDRLTrainer``, the
  transport fabric, ``PFDRLSystem``, the experiment harness).
- :class:`RunJournal` — a structured JSONL event log (one event per
  phase: day, round, residence, seconds, sgd_steps, params_tx, quorum
  skips, losses) written via ``python -m repro ... --telemetry out.jsonl``.

Disabled (the default, ``telemetry=None`` everywhere) the system runs
through the shared :data:`NULL_TELEMETRY` no-op object: no clock reads,
no allocations, bit-identical results.  Enabled, everything except
wall-clock ``seconds`` fields is deterministic for a fixed seed.

See DESIGN.md §10 for the event schema and phase taxonomy.
"""

from repro.obs.journal import (
    RunJournal,
    TIMING_FIELD,
    is_timing_field,
    read_journal,
    strip_timing,
    validate_event,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    ensure_telemetry,
)

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "ensure_telemetry",
    "RunJournal",
    "read_journal",
    "validate_event",
    "strip_timing",
    "is_timing_field",
    "TIMING_FIELD",
]
