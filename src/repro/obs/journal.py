"""Structured run journal: one JSON object per pipeline phase event.

The journal is the durable half of ``repro.obs``: while the
:class:`~repro.obs.telemetry.Telemetry` registry aggregates counters and
timers in memory, the journal records the *sequence* of phase events —
one line of JSON per event — so a finished run can be audited offline
(which day took how long, how many parameters crossed the wire in each
γ round, which rounds were quorum-skipped).

Schema
------
Every event is a flat JSON object with:

- ``kind`` (required, ``str``) — the phase taxonomy entry, dotted
  ``subsystem.phase`` (e.g. ``"pfdrl.day"``, ``"dfl.round"``,
  ``"system.phase"``; see DESIGN.md §10 for the full taxonomy);
- ``seq`` (assigned by the journal) — monotonically increasing event
  index, making the emission order explicit in the file;
- any number of scalar payload fields (``int`` / ``float`` / ``str`` /
  ``bool`` / ``None``).  Numpy scalars are coerced to native Python so
  the file is plain JSON.

Wall-clock fields (by convention ``seconds`` and any ``*_seconds``) are
the only nondeterministic content: two runs with identical seeds produce
identical journals after :func:`strip_timing`.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable, Iterator

import numpy as np

__all__ = [
    "RunJournal",
    "TIMING_FIELD",
    "is_timing_field",
    "strip_timing",
    "validate_event",
    "read_journal",
]

#: Canonical wall-clock field name; ``*_seconds`` variants also count.
TIMING_FIELD = "seconds"

_SCALARS = (str, bool, int, float, type(None))


def is_timing_field(name: str) -> bool:
    """Whether *name* carries wall-clock time (nondeterministic)."""
    return name == TIMING_FIELD or name.endswith("_" + TIMING_FIELD)


def strip_timing(event: dict[str, Any]) -> dict[str, Any]:
    """*event* without its wall-clock fields — the deterministic part."""
    return {k: v for k, v in event.items() if not is_timing_field(k)}


def _coerce(value: Any) -> Any:
    """Force a payload value down to a JSON-native scalar.

    Non-finite floats (NaN/inf — e.g. a reward fraction on an empty day)
    become ``null``: strict JSON has no NaN token, and the journal must
    stay loadable by any JSONL consumer.
    """
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, (float, np.floating)):
        value = float(value)
        return value if math.isfinite(value) else None
    if isinstance(value, np.bool_):
        return bool(value)
    return value


def validate_event(event: dict[str, Any]) -> dict[str, Any]:
    """Check one event against the schema; returns it (coerced) or raises."""
    if "kind" not in event or not isinstance(event["kind"], str) or not event["kind"]:
        raise ValueError(f"event needs a non-empty string 'kind': {event!r}")
    out: dict[str, Any] = {}
    for key, value in event.items():
        if not isinstance(key, str):
            raise ValueError(f"event field names must be str, got {key!r}")
        value = _coerce(value)
        if not isinstance(value, _SCALARS):
            raise ValueError(
                f"event field {key!r} must be a JSON scalar, got {type(value).__name__}"
            )
        out[key] = value
    return out


class RunJournal:
    """Ordered, in-memory event log with JSONL round-trip.

    >>> j = RunJournal()
    >>> j.emit("pfdrl.day", day=0, sgd_steps=12)
    >>> j.events[0]["kind"]
    'pfdrl.day'
    """

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.events)

    def emit(self, kind: str, **fields: Any) -> dict[str, Any]:
        """Validate, stamp and append one event; returns the stored dict."""
        event = validate_event({"kind": kind, **fields})
        event["seq"] = len(self.events)
        self.events.append(event)
        return event

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        """All events whose ``kind`` equals *kind*, in emission order."""
        return [e for e in self.events if e["kind"] == kind]

    def kinds(self) -> list[str]:
        """Sorted set of kinds present in the journal."""
        return sorted({e["kind"] for e in self.events})

    def total(self, kind: str, field: str) -> float:
        """Sum of *field* over all events of *kind* (missing fields = 0)."""
        return float(sum(e.get(field, 0) or 0 for e in self.of_kind(kind)))

    def deterministic_view(self) -> list[dict[str, Any]]:
        """The journal with wall-clock fields removed — comparable across
        identically-seeded runs."""
        return [strip_timing(e) for e in self.events]

    # ------------------------------------------------------------------
    def dumps(self) -> str:
        """The journal as JSONL text (one compact JSON object per line)."""
        return "".join(
            json.dumps(e, sort_keys=True, separators=(",", ":")) + "\n"
            for e in self.events
        )

    def write(self, path: str) -> int:
        """Write the journal as JSONL to *path*; returns the event count."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps())
        return len(self.events)

    @classmethod
    def from_events(cls, events: Iterable[dict[str, Any]]) -> "RunJournal":
        journal = cls()
        for event in events:
            event = validate_event(dict(event))
            event.setdefault("seq", len(journal.events))
            journal.events.append(event)
        return journal

    @classmethod
    def read(cls, path: str) -> "RunJournal":
        """Load a JSONL journal back; validates every line."""
        with open(path, "r", encoding="utf-8") as fh:
            events = [json.loads(line) for line in fh if line.strip()]
        return cls.from_events(events)


def read_journal(path: str) -> RunJournal:
    """Module-level convenience alias for :meth:`RunJournal.read`."""
    return RunJournal.read(path)
