"""Run-telemetry registry: counters, gauges and timers for the hot paths.

``Telemetry`` is the in-memory half of ``repro.obs``.  It absorbs the
pre-existing :class:`repro.metrics.timing.Stopwatch` (timers carry
work-unit annotations exactly as before) and adds named counters and
gauges, plus structured event emission into an attached
:class:`~repro.obs.journal.RunJournal`.

Disabled-by-default contract
----------------------------
Every instrumented component takes ``telemetry=None`` and substitutes
:data:`NULL_TELEMETRY` — a :class:`NullTelemetry` whose methods are
no-ops, whose timer context manager is one shared object, and whose
``now()`` never touches the clock.  The default path therefore performs
no timing syscalls and allocates nothing per call, keeping bit-identity
and speed of un-instrumented runs.  ``bool(telemetry)`` answers "is
telemetry live?" so emission blocks that need any set-up work (snapshot
dictionaries, per-agent baselines) can be skipped wholesale::

    if self.telemetry:
        sgd_before = {k: a.sgd_steps for k, a in self._agents.items()}

Determinism: with telemetry enabled, everything except wall-clock
``seconds`` fields is a pure function of the run's seeds — see
:meth:`RunJournal.deterministic_view`.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from repro.metrics.timing import Stopwatch, TimingRecord
from repro.obs.journal import RunJournal

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY", "ensure_telemetry"]


class Telemetry:
    """Mutable registry of counters, gauges and labelled timers.

    Parameters
    ----------
    journal:
        Optional event sink; ``journal=None`` keeps the registry live
        (counters/timers) without recording the event stream.
    """

    enabled = True

    def __init__(self, journal: RunJournal | None = None) -> None:
        self.stopwatch = Stopwatch()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.journal = journal

    def __bool__(self) -> bool:
        return True

    # -- scalar instruments --------------------------------------------
    def count(self, name: str, n: float = 1.0) -> None:
        """Add *n* to the cumulative counter *name*."""
        self.counters[name] = self.counters.get(name, 0.0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set the point-in-time gauge *name* to *value*."""
        self.gauges[name] = float(value)

    # -- timers --------------------------------------------------------
    def timer(self, label: str):
        """Context manager accumulating wall time under *label*."""
        return self.stopwatch.measure(label)

    def add_work(self, label: str, **units: float) -> None:
        """Attach work-unit counts (sgd steps, params, ...) to *label*."""
        self.stopwatch.add_work(label, **units)

    def now(self) -> float:
        """Monotonic clock read (0.0 on the null object)."""
        return time.perf_counter()

    # -- events --------------------------------------------------------
    def event(self, kind: str, **fields: Any) -> None:
        """Emit one phase event into the attached journal (if any)."""
        if self.journal is not None:
            self.journal.emit(kind, **fields)

    def record_transport(self, stats, prefix: str = "transport") -> None:
        """Mirror a :class:`~repro.federated.transport.TransportStats`
        into gauges as ``{prefix}.{counter}`` (cumulative values, so
        gauges are the right instrument — re-recording overwrites)."""
        for name, value in stats.as_dict().items():
            self.gauge(f"{prefix}.{name}", value)

    def record_links(self, stats, prefix: str = "transport") -> None:
        """Mirror the per-link breakdown of a
        :class:`~repro.federated.transport.TransportStats` into gauges as
        ``{prefix}.link.{src}->{dst}.{counter}`` so loss is attributable
        to individual links in the export."""
        for (src, dst), counters in stats.per_link.items():
            for name, value in counters.items():
                self.gauge(f"{prefix}.link.{src}->{dst}.{name}", value)

    def record_selfheal(self, monitor, prefix: str = "selfheal") -> None:
        """Mirror a :class:`~repro.federated.selfheal.LinkHealthMonitor`'s
        decision counters and EWMA loss estimates into gauges."""
        for name, value in monitor.counters().items():
            self.gauge(f"{prefix}.{name}", value)
        for (u, v), est in monitor.link_estimates().items():
            self.gauge(f"{prefix}.ewma.{u}-{v}", est)

    def record_tiers(self, tiers: Mapping[str, Any], prefix: str = "hier") -> None:
        """Mirror a ``{tier_name: TransportStats}`` mapping into gauges as
        ``{prefix}.{tier}.{counter}`` — the per-tier communication split
        the scale benchmark and the CI smoke floor read from.  Tier names
        are free-form, so per-cluster splits (``cluster.3``) use the same
        instrument."""
        for tier, stats in tiers.items():
            self.record_transport(stats, prefix=f"{prefix}.{tier}")

    # -- persistence ---------------------------------------------------
    def state_dict(self) -> dict:
        """Counters, gauges, stopwatch totals and the journal so far."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "stopwatch": self.stopwatch.state_dict(),
            "journal": None if self.journal is None
            else [dict(e) for e in self.journal.events],
        }

    def load_state_dict(self, state: dict) -> None:
        self.counters = {k: float(v) for k, v in state["counters"].items()}
        self.gauges = {k: float(v) for k, v in state["gauges"].items()}
        self.stopwatch.load_state_dict(state["stopwatch"])
        events = state.get("journal")
        if events is not None and self.journal is not None:
            self.journal.events = [dict(e) for e in events]

    # -- export --------------------------------------------------------
    def timing_record(self, label: str) -> TimingRecord:
        return self.stopwatch.record(label)

    def snapshot(self) -> dict[str, Any]:
        """One dict with everything the registry holds right now."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {
                label: {
                    "seconds": self.stopwatch.total(label),
                    "count": self.stopwatch.count(label),
                    "work": self.stopwatch.work(label),
                }
                for label in self.stopwatch.labels()
            },
        }


class _NullTimer:
    """Shared, stateless no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_TIMER = _NullTimer()


class NullTelemetry(Telemetry):
    """Inert telemetry: same interface, no state, no clock reads.

    Falsy so hot paths can gate optional bookkeeping with
    ``if self.telemetry:``; all methods early-return without touching
    dictionaries or ``time.perf_counter``.
    """

    enabled = False

    def __init__(self) -> None:
        # No Stopwatch, no dicts: the null object must stay allocation-
        # free after construction (one shared instance serves everyone).
        self.journal = None

    def __bool__(self) -> bool:
        return False

    def count(self, name: str, n: float = 1.0) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def timer(self, label: str) -> _NullTimer:
        return _NULL_TIMER

    def add_work(self, label: str, **units: float) -> None:
        return None

    def now(self) -> float:
        return 0.0

    def event(self, kind: str, **fields: Any) -> None:
        return None

    def record_transport(self, stats, prefix: str = "transport") -> None:
        return None

    def record_links(self, stats, prefix: str = "transport") -> None:
        return None

    def record_selfheal(self, monitor, prefix: str = "selfheal") -> None:
        return None

    def record_tiers(self, tiers: Mapping[str, Any], prefix: str = "hier") -> None:
        return None

    def timing_record(self, label: str) -> TimingRecord:
        return TimingRecord(label, 0.0)

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "timers": {}}

    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        return None


#: The shared inert instance every instrumented component defaults to.
NULL_TELEMETRY = NullTelemetry()


def ensure_telemetry(telemetry: Telemetry | None) -> Telemetry:
    """``telemetry`` itself, or the shared null object for ``None``."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
