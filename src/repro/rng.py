"""Deterministic random-number utilities.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  This module centralises the conversion and
provides *seed-stream fan-out*: given one master seed, derive independent,
reproducible child generators for each residence / device / worker.  The
fan-out is based on :class:`numpy.random.SeedSequence` spawning, which
guarantees statistical independence between streams regardless of how many
are created.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "as_generator",
    "spawn",
    "spawn_many",
    "hash_seed",
    "generator_state",
    "restore_generator",
]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    - ``None`` produces a non-deterministic generator (fresh entropy).
    - An ``int`` produces ``default_rng(seed)``.
    - A ``Generator`` is returned unchanged (no copy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators from *rng*.

    Uses the generator's bit-generator seed sequence when available, falling
    back to drawing a fresh 64-bit state.  Children are independent of each
    other and of the parent's future output.
    """
    seed_seq = rng.bit_generator.seed_seq
    if isinstance(seed_seq, np.random.SeedSequence):
        children = seed_seq.spawn(n)
        return [np.random.default_rng(c) for c in children]
    # Extremely old numpy or a hand-rolled bit generator: fall back to
    # integer draws (still deterministic given the parent state).
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


def spawn_many(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Convenience: ``spawn(as_generator(seed), n)``."""
    return spawn(as_generator(seed), n)


def hash_seed(master: int, *parts: int | str) -> int:
    """Derive a stable 63-bit seed from a master seed plus labels.

    Useful for addressing a stream by semantic coordinates (residence id,
    device name, day index) rather than by spawn order, so that adding a new
    residence does not shift everyone else's stream.
    """
    acc = np.uint64(master & 0x7FFF_FFFF_FFFF_FFFF)
    for part in parts:
        if isinstance(part, str):
            # FNV-1a over the utf-8 bytes.
            h = np.uint64(0xCBF29CE484222325)
            for byte in part.encode("utf-8"):
                h = np.uint64((int(h) ^ byte) * 0x100000001B3 % 2**64)
            val = h
        else:
            val = np.uint64(int(part) % 2**64)
        acc = np.uint64((int(acc) * 0x9E3779B97F4A7C15 + int(val)) % 2**64)
    return int(acc) & 0x7FFF_FFFF_FFFF_FFFF


def _copy_state(node):
    """Deep-copy a bit-generator state tree (dicts / ndarrays / scalars)."""
    if isinstance(node, dict):
        return {k: _copy_state(v) for k, v in node.items()}
    if isinstance(node, np.ndarray):
        return node.copy()
    return node


def generator_state(rng: np.random.Generator) -> dict:
    """Capture the complete bit-generator state of *rng*.

    The returned dict is a deep copy (mutating it, or drawing from *rng*
    afterwards, does not affect the snapshot) and is JSON-serialisable for
    the common bit generators — PCG64 exposes its 128-bit state as Python
    ints, which ``json`` handles natively.
    """
    return _copy_state(rng.bit_generator.state)


def restore_generator(rng: np.random.Generator, state: dict) -> np.random.Generator:
    """Restore *rng* to a state captured by :func:`generator_state`.

    The bit-generator family must match (a PCG64 state cannot be loaded
    into an MT19937 generator).  Returns *rng* for chaining.
    """
    name = state.get("bit_generator") if isinstance(state, dict) else None
    current = rng.bit_generator.state.get("bit_generator")
    if name is not None and current is not None and name != current:
        raise ValueError(
            f"bit-generator mismatch: snapshot is {name!r}, generator is {current!r}"
        )
    rng.bit_generator.state = _copy_state(state)
    return rng


def check_rngs_independent(rngs: Sequence[np.random.Generator], n_draws: int = 8) -> bool:
    """Sanity helper used in tests: draws from each generator differ."""
    draws = [tuple(r.integers(0, 2**32, size=n_draws).tolist()) for r in rngs]
    return len(set(draws)) == len(draws)
