"""The grid-aware scenario runner (schedulable loads + DERs + DR events).

:class:`ScenarioRunner` trains one 4-action deadline-scheduling DQN per
(residence, schedulable device) pair over the training days' task
windows, then evaluates the greedy policy on the held-out days against
two coordinated baselines:

- **optimal**: the k-cheapest-minutes schedule (a true lower bound for
  an interruptible task — see :mod:`repro.scenario.baseline`), and
- **naive**: run the chore the moment its window opens.

Evaluation also nets the scheduled load through the per-residence DER
tier (solar + battery) and reports the grid cost with and without it.

Training is day-granular and checkpoint-resumable through
:class:`repro.persist.CheckpointStore` with a config-digest guard,
mirroring the main pipeline: a run resumed from a mid-run checkpoint is
bit-identical to an uninterrupted one.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import replace

import numpy as np

from repro.config import PFDRLConfig, config_to_dict
from repro.data.generator import ScheduleRequest, generate_schedule_requests
from repro.data.residence import make_profiles
from repro.rl.dqn import DQNAgent
from repro.rl.env import ScheduleEnv
from repro.rl.qnet import SCHED_STATE_DIM
from repro.rng import hash_seed
from repro.scenario.baseline import cheapest_minutes, first_minutes, schedule_cost
from repro.scenario.der import Battery, dispatch_der, solar_trace
from repro.scenario.dr import scenario_price_plan

__all__ = ["ScenarioRunner", "summarize_system_savings"]

#: Floor applied to the per-minute price grid — ScheduleEnv requires
#: strictly positive prices and the reward normalises by the mean.
PRICE_FLOOR = 1e-4


class ScenarioRunner:
    """Train/evaluate the schedulable-load tier of one scenario run."""

    def __init__(self, config: PFDRLConfig) -> None:
        if config.scenario is None:
            raise ValueError("config.scenario must be set for a scenario run")
        self.config = config
        self.scenario = config.scenario
        self.data = config.data
        sc = self.scenario

        self.plan = scenario_price_plan(sc, self.data)
        mpd = self.data.minutes_per_day
        hours = np.arange(mpd) * (24.0 / mpd)
        #: Per-(day, minute) price grid of the whole run.
        self.price = np.stack(
            [
                np.maximum(
                    np.asarray(
                        self.plan.price_per_kwh(
                            hours, np.full(mpd, float(self.data.start_day + d))
                        ),
                        dtype=np.float64,
                    ),
                    PRICE_FLOOR,
                )
                for d in range(self.data.n_days)
            ]
        )

        self.requests = generate_schedule_requests(
            self.data, sc.schedulable_devices
        )
        self.profiles = {
            p.residence_id: p
            for p in make_profiles(
                self.data.n_residences,
                tuple(sc.schedulable_devices),
                self.data.heterogeneity,
                self.data.seed,
            )
        }
        self._by_day: dict[int, list[ScheduleRequest]] = defaultdict(list)
        for req in self.requests:
            self._by_day[req.day].append(req)
        for day_requests in self._by_day.values():
            day_requests.sort(key=lambda r: (r.residence_id, r.device))

        # Same train/eval day split convention as the main pipeline.
        n_days = self.data.n_days
        self.n_train_days = max(1, int(round(n_days * self.data.train_fraction)))
        if n_days > 1:
            self.n_train_days = min(self.n_train_days, n_days - 1)

        # One 4-action agent per (residence, device) task stream, each on
        # its own hash-addressed seed so the fleet is order-independent.
        dqn_cfg = replace(config.dqn, n_actions=4)
        keys = sorted({(r.residence_id, r.device) for r in self.requests})
        self.agents = {
            key: DQNAgent(
                dqn_cfg,
                seed=hash_seed(config.seed, "sched-agent", key[0], key[1]),
                state_dim=SCHED_STATE_DIM,
            )
            for key in keys
        }
        self.day_done = 0

    # ------------------------------------------------------------------
    def _solar_day(self, residence_id: int, day: int) -> np.ndarray:
        return solar_trace(
            self.scenario.solar_peak_kw,
            self.data.minutes_per_day,
            self.data.start_day + day,
            residence_id,
            seed=self.scenario.seed,
        )

    def _env(self, req: ScheduleRequest) -> ScheduleEnv:
        profile = self.profiles[req.residence_id]
        window = slice(req.start_min, req.end_min)
        return ScheduleEnv(
            self.price[req.day, window],
            profile.on_kw(req.device),
            profile.standby_kw(req.device),
            req.run_minutes,
            context_kw=self._solar_day(req.residence_id, req.day)[window],
            device=req.device,
            deadline_penalty=self.scenario.deadline_penalty,
        )

    # ------------------------------------------------------------------
    def run_day(self) -> None:
        """Train every task window of the next pending day."""
        day = self.day_done
        for req in self._by_day.get(day, ()):
            agent = self.agents[(req.residence_id, req.device)]
            for _ in range(self.scenario.episodes_per_task):
                agent.run_episode(self._env(req))
        self.day_done += 1

    def run(
        self,
        store=None,
        checkpoint_every: int = 2,
        resume: bool = False,
        stop_after_day: int | None = None,
    ) -> dict:
        """Train all training days (checkpoint-segmented), then evaluate.

        With *store*, state is saved every ``checkpoint_every`` days and
        at the end of training; ``resume=True`` picks up from the
        store's latest checkpoint (digest-guarded).  ``stop_after_day``
        force-checkpoints and raises
        :class:`~repro.persist.TrainingInterrupted` once that day
        completes, simulating a crash between segments.
        """
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        from repro.persist import TrainingInterrupted

        if resume and store is not None and store.latest_step() is not None:
            self.resume(store)
        while self.day_done < self.n_train_days:
            self.run_day()
            stop_here = (
                stop_after_day is not None and self.day_done >= stop_after_day
            )
            if store is not None and (
                self.day_done % checkpoint_every == 0
                or self.day_done == self.n_train_days
                or stop_here
            ):
                store.save(
                    self.day_done,
                    self.state_dict(),
                    meta={
                        "config_sha256": self.config_digest(),
                        "day": self.day_done,
                    },
                )
            if stop_here and self.day_done < self.n_train_days:
                raise TrainingInterrupted(self.day_done)
        return self.evaluate()

    # ------------------------------------------------------------------
    def evaluate(self) -> dict:
        """Greedy policy vs the coordinated baselines on held-out days."""
        from repro.rl.batch import schedule_rollout

        eval_days = range(self.n_train_days, self.data.n_days)
        groups: dict[tuple[int, str], list[ScheduleRequest]] = defaultdict(list)
        for day in eval_days:
            for req in self._by_day.get(day, ()):
                groups[(req.residence_id, req.device)].append(req)

        mpd = self.data.minutes_per_day
        dqn_cost = baseline_cost = naive_cost = 0.0
        forced_runs = tasks = run_minutes = 0
        #: Scheduled-load kW per (residence, eval day) for DER netting.
        sched_kw: dict[tuple[int, int], np.ndarray] = {}
        for key in sorted(groups):
            reqs = groups[key]
            envs = [self._env(r) for r in reqs]
            schedule_rollout(self.agents[key].qnet, envs)
            for req, env in zip(reqs, envs):
                window = self.price[req.day, req.start_min : req.end_min]
                on_kw = self.profiles[req.residence_id].on_kw(req.device)
                dqn_cost += env.cost()
                forced_runs += env.forced_runs
                tasks += 1
                run_minutes += req.run_minutes
                baseline_cost += schedule_cost(
                    cheapest_minutes(window, req.run_minutes), window, on_kw
                )
                naive_cost += schedule_cost(
                    first_minutes(env.horizon, req.run_minutes), window, on_kw
                )
                slot = sched_kw.setdefault(
                    (req.residence_id, req.day), np.zeros(mpd)
                )
                slot[req.start_min : req.end_min] += np.nan_to_num(
                    env.controlled_kw
                )

        sc = self.scenario
        grid_cost = raw_cost = solar_kwh = charged = discharged = 0.0
        for (rid, day), load in sorted(sched_kw.items()):
            battery = Battery(
                sc.battery_kwh, sc.battery_max_kw, sc.battery_efficiency
            )
            dispatch = dispatch_der(
                load, self._solar_day(rid, day), self.price[day], battery
            )
            grid_cost += float((dispatch.grid_kw * self.price[day]).sum() / 60.0)
            raw_cost += float((load * self.price[day]).sum() / 60.0)
            solar_kwh += dispatch.solar_used_kwh
            charged += dispatch.charged_kwh
            discharged += dispatch.discharged_kwh

        gap = float("nan")
        if baseline_cost > 0:
            gap = (dqn_cost - baseline_cost) / baseline_cost
        return {
            "pricing": sc.pricing,
            "tasks": tasks,
            "run_minutes": run_minutes,
            "dqn_cost": float(dqn_cost),
            "baseline_cost": float(baseline_cost),
            "naive_cost": float(naive_cost),
            "dqn_vs_baseline_gap": float(gap),
            "forced_runs": forced_runs,
            "forced_fraction": (
                forced_runs / run_minutes if run_minutes else float("nan")
            ),
            "der": {
                "grid_cost": float(grid_cost),
                "raw_cost": float(raw_cost),
                "solar_used_kwh": float(solar_kwh),
                "battery_charged_kwh": float(charged),
                "battery_discharged_kwh": float(discharged),
            },
        }

    # ------------------------------------------------------------------
    # Persistence
    def config_digest(self) -> str:
        from repro.persist import json_digest

        return json_digest(
            {"config": config_to_dict(self.config), "variant": "scenario-runner"}
        )

    def state_dict(self) -> dict:
        return {
            "day_done": self.day_done,
            "agents": {
                f"{rid}:{device}": agent.state_dict()
                for (rid, device), agent in self.agents.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        self.day_done = int(state["day_done"])
        for (rid, device), agent in self.agents.items():
            agent.load_state_dict(state["agents"][f"{rid}:{device}"])

    def resume(self, store, step: int | None = None) -> dict:
        """Load a training checkpoint (default latest), digest-guarded."""
        from repro.persist import CheckpointError

        state, manifest = store.load(step=step)
        recorded = manifest.get("meta", {}).get("config_sha256")
        if recorded is not None and recorded != self.config_digest():
            raise CheckpointError(
                "scenario checkpoint was written under a different config "
                f"(digest {recorded[:12]}… vs {self.config_digest()[:12]}…)"
            )
        self.load_state_dict(state)
        return manifest


def summarize_system_savings(
    config: PFDRLConfig, saved_kw: np.ndarray
) -> dict:
    """Price a trained EMS's saved energy under the scenario tariff.

    *saved_kw* is the ``(n_residences, n_minutes)`` per-minute saved
    power of :class:`repro.core.pfdrl.EMSEvaluation`; the summary values
    it under the scenario's plan (events and all), splitting out the DR
    incentive share when the plan carries one.
    """
    if config.scenario is None:
        raise ValueError("config.scenario must be set")
    plan = scenario_price_plan(config.scenario, config.data)
    saved_kw = np.asarray(saved_kw, dtype=np.float64)
    mpd = config.data.minutes_per_day
    mph = max(1, mpd // 24)
    minutes = np.arange(saved_kw.shape[1])
    hours = (minutes % mpd) / mph
    days = config.data.start_day + minutes // mpd
    delta_kwh = saved_kw.sum(axis=0) / 60.0
    summary = {
        "pricing": config.scenario.pricing,
        "plan": plan.name,
        "saved_value": float(plan.cost(delta_kwh, hours, days)),
        "saved_kwh": float(delta_kwh.sum()),
    }
    if hasattr(plan, "incentive_per_kwh"):
        incentive = np.asarray(plan.incentive_per_kwh(hours, days))
        summary["dr_incentive_value"] = float((delta_kwh * incentive).sum())
        summary["dr_event_minutes"] = int((incentive > 0).sum())
    return summary
