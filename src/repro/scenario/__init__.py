"""Grid-aware scenario pack: schedulable loads, DERs, DR events.

Opt-in extension tier over the core PFDRL pipeline (enabled by setting
``PFDRLConfig.scenario``): deadline-constrained deferrable loads driven
by 4-action scheduling DQNs, per-residence solar + battery netting, and
seeded demand-response event pricing — with a provably-optimal
coordinated baseline bounding the learned schedules.
"""

from repro.scenario.baseline import cheapest_minutes, first_minutes, schedule_cost
from repro.scenario.der import (
    Battery,
    DERDispatch,
    DERMeter,
    dispatch_der,
    solar_trace,
)
from repro.scenario.dr import (
    DREvent,
    generate_dr_events,
    plan_events,
    scenario_price_plan,
)
from repro.scenario.runner import ScenarioRunner, summarize_system_savings

__all__ = [
    "Battery",
    "DERDispatch",
    "DERMeter",
    "DREvent",
    "ScenarioRunner",
    "cheapest_minutes",
    "dispatch_der",
    "first_minutes",
    "generate_dr_events",
    "plan_events",
    "scenario_price_plan",
    "schedule_cost",
    "solar_trace",
    "summarize_system_savings",
]
