"""Distributed energy resources: per-residence solar + battery.

The solar trace is a deterministic daylight bell (centred after solar
noon) with a seasonal amplitude and a seeded per-(residence, day) cloud
factor, addressed through :func:`repro.rng.hash_seed` so any single
day's trace can be regenerated without replaying the run.

The battery is a simple capacity / power / round-trip-efficiency model;
the round-trip loss is split evenly (``sqrt(eta)``) between the charge
and discharge half-cycles so ``delivered == absorbed * eta`` over a full
cycle.  :func:`dispatch_der` is the greedy household policy: charge from
solar surplus, discharge into the priciest minutes, never export (no
feed-in tariff — surplus the battery cannot absorb is spilled).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import hash_seed

__all__ = ["Battery", "DERDispatch", "DERMeter", "dispatch_der", "solar_trace"]

#: Fraction of the day's price distribution above which the battery
#: discharges (the "expensive minutes" of the greedy dispatch).
DISCHARGE_QUANTILE = 0.7


def solar_trace(
    peak_kw: float,
    minutes_per_day: int,
    day_of_year: int,
    residence_id: int,
    seed: int = 0,
) -> np.ndarray:
    """One day of per-minute PV output (kW) for one residence.

    Deterministic bell ``exp(-((h - 12.5) / 3)^2 / 2)`` scaled by the
    seasonal factor ``1 + 0.45 cos(2pi (d - 172) / 365)`` (midsummer
    peak) and a per-day cloud factor drawn from
    ``hash_seed(seed, "solar", residence, day)``.
    """
    if peak_kw < 0:
        raise ValueError("peak_kw must be >= 0")
    if minutes_per_day < 1:
        raise ValueError("minutes_per_day must be >= 1")
    if peak_kw == 0:
        return np.zeros(minutes_per_day)
    hours = np.arange(minutes_per_day) * (24.0 / minutes_per_day)
    bell = np.exp(-0.5 * ((hours - 12.5) / 3.0) ** 2)
    # Cut the tails: no generation before ~6h or after ~20h.
    bell = np.where((hours > 5.5) & (hours < 20.0), bell, 0.0)
    season = 1.0 + 0.45 * np.cos(2.0 * np.pi * (day_of_year - 172.0) / 365.0)
    rng = np.random.default_rng(
        hash_seed(seed, "solar", residence_id, int(day_of_year))
    )
    cloud = float(rng.uniform(0.35, 1.0))
    return np.clip(peak_kw * max(season, 0.0) * cloud * bell, 0.0, None)


class Battery:
    """Capacity / power / round-trip-efficiency battery model.

    State is the stored energy ``soc_kwh`` in ``[0, capacity_kwh]``.
    Both half-cycles apply ``sqrt(efficiency)`` so a full round trip
    delivers ``efficiency`` times the grid-side energy absorbed.  A
    zero-capacity or zero-power battery is a valid no-op component.
    """

    def __init__(
        self, capacity_kwh: float, max_kw: float, efficiency: float = 0.9
    ) -> None:
        if capacity_kwh < 0 or max_kw < 0:
            raise ValueError("capacity_kwh and max_kw must be >= 0")
        if not 0.0 < efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        self.capacity_kwh = float(capacity_kwh)
        self.max_kw = float(max_kw)
        self.efficiency = float(efficiency)
        self._eta_half = float(np.sqrt(efficiency))
        self.soc_kwh = 0.0

    def charge(self, request_kw: float, minutes: float = 1.0) -> float:
        """Absorb up to *request_kw* for *minutes*; returns the kW taken."""
        if request_kw <= 0 or self.capacity_kwh <= 0 or self.max_kw <= 0:
            return 0.0
        headroom_kwh = self.capacity_kwh - self.soc_kwh
        absorbed = min(
            float(request_kw),
            self.max_kw,
            headroom_kwh * 60.0 / (minutes * self._eta_half),
        )
        absorbed = max(absorbed, 0.0)
        self.soc_kwh += absorbed * self._eta_half * minutes / 60.0
        return absorbed

    def discharge(self, request_kw: float, minutes: float = 1.0) -> float:
        """Deliver up to *request_kw* for *minutes*; returns the kW given."""
        if request_kw <= 0 or self.max_kw <= 0:
            return 0.0
        delivered = min(
            float(request_kw),
            self.max_kw,
            self.soc_kwh * self._eta_half * 60.0 / minutes,
        )
        delivered = max(delivered, 0.0)
        self.soc_kwh -= delivered / self._eta_half * minutes / 60.0
        self.soc_kwh = max(self.soc_kwh, 0.0)
        return delivered

    def state_dict(self) -> dict:
        return {"soc_kwh": self.soc_kwh}

    def load_state_dict(self, state: dict) -> None:
        self.soc_kwh = float(state["soc_kwh"])


@dataclass(frozen=True)
class DERDispatch:
    """Result of netting one load window through solar + battery."""

    #: Per-minute net grid draw (kW) after solar and battery.
    grid_kw: np.ndarray
    #: Solar energy consumed by the load (kWh).
    solar_used_kwh: float
    #: Solar surplus neither used nor stored (kWh) — no feed-in.
    solar_spilled_kwh: float
    #: Grid-side energy absorbed by the battery (kWh).
    charged_kwh: float
    #: Energy the battery delivered to the load (kWh).
    discharged_kwh: float


def dispatch_der(
    load_kw: np.ndarray,
    solar_kw: np.ndarray,
    price: np.ndarray,
    battery: Battery,
) -> DERDispatch:
    """Greedy per-minute DER dispatch over one aligned window.

    Solar serves the load first; surplus charges the battery (the rest
    spills).  The battery discharges into minutes whose price sits in
    the top ``1 - DISCHARGE_QUANTILE`` of the window.  The returned grid
    trace is what actually gets priced.
    """
    load = np.asarray(load_kw, dtype=np.float64)
    solar = np.asarray(solar_kw, dtype=np.float64)
    price = np.asarray(price, dtype=np.float64)
    if not (load.shape == solar.shape == price.shape) or load.ndim != 1:
        raise ValueError("load, solar and price must be aligned 1-D windows")
    threshold = float(np.quantile(price, DISCHARGE_QUANTILE))
    grid = np.zeros_like(load)
    solar_used = spilled = charged = discharged = 0.0
    for i in range(load.shape[0]):
        net = load[i] - solar[i]
        if net <= 0:
            solar_used += load[i] / 60.0
            surplus = -net
            absorbed = battery.charge(surplus)
            charged += absorbed / 60.0
            spilled += (surplus - absorbed) / 60.0
            grid[i] = 0.0
        else:
            solar_used += solar[i] / 60.0
            delivered = (
                battery.discharge(net) if price[i] >= threshold else 0.0
            )
            discharged += delivered / 60.0
            grid[i] = net - delivered
    return DERDispatch(
        grid_kw=grid,
        solar_used_kwh=solar_used,
        solar_spilled_kwh=spilled,
        charged_kwh=charged,
        discharged_kwh=discharged,
    )


class DERMeter:
    """Streaming DER netting for the online serving layer.

    Duck-typed hook for
    :class:`repro.core.controller.OnlineController`: each minute the
    controller hands the household's total controlled draw to
    :meth:`net` and gets back the grid draw after solar and battery.
    The solar trace and price series are minute-indexed over the whole
    deployment; the cursor advances once per call.
    """

    def __init__(
        self,
        solar_kw: np.ndarray,
        price: np.ndarray,
        battery: Battery,
    ) -> None:
        self.solar_kw = np.asarray(solar_kw, dtype=np.float64)
        self.price = np.asarray(price, dtype=np.float64)
        if self.solar_kw.shape != self.price.shape or self.solar_kw.ndim != 1:
            raise ValueError("solar and price series must be aligned 1-D")
        self.battery = battery
        self._threshold = float(np.quantile(self.price, DISCHARGE_QUANTILE))
        self._t = 0
        self.grid_kwh = 0.0
        self.solar_used_kwh = 0.0

    @property
    def t(self) -> int:
        return self._t

    def net(self, load_kw: float) -> float:
        """Net one minute of household load; returns the grid draw (kW)."""
        if self._t >= self.solar_kw.shape[0]:
            raise RuntimeError("DER meter exhausted its solar/price series")
        t = self._t
        self._t += 1
        net = float(load_kw) - float(self.solar_kw[t])
        if net <= 0:
            self.solar_used_kwh += float(load_kw) / 60.0
            self.battery.charge(-net)
            return 0.0
        self.solar_used_kwh += float(self.solar_kw[t]) / 60.0
        if self.price[t] >= self._threshold:
            net -= self.battery.discharge(net)
        self.grid_kwh += net / 60.0
        return net
