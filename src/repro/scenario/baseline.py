"""Coordinated-schedule baselines for the deferrable-load tier.

For an *interruptible* must-run-k-minutes task, running in the k
cheapest minutes of the window is provably optimal (the cost is a sum
of k per-minute prices, each freely chosen from the window), so
:func:`cheapest_minutes` bounds every feasible schedule from below —
including anything the DQN produces.  The naive first-k schedule is the
"no EMS" reference: start the chore the moment the window opens.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cheapest_minutes",
    "first_minutes",
    "schedule_cost",
]


def cheapest_minutes(price: np.ndarray, k: int) -> np.ndarray:
    """Boolean mask selecting the *k* cheapest minutes of the window.

    Stable sort: ties break toward the earlier minute, so the schedule
    is deterministic across platforms.
    """
    price = np.asarray(price, dtype=np.float64)
    if price.ndim != 1:
        raise ValueError("price must be a 1-D window")
    if not 0 <= k <= price.shape[0]:
        raise ValueError("k must be in [0, window length]")
    mask = np.zeros(price.shape[0], dtype=bool)
    mask[np.argsort(price, kind="stable")[:k]] = True
    return mask


def first_minutes(horizon: int, k: int) -> np.ndarray:
    """Boolean mask of the naive schedule: run the first *k* minutes."""
    if not 0 <= k <= horizon:
        raise ValueError("k must be in [0, horizon]")
    mask = np.zeros(int(horizon), dtype=bool)
    mask[:k] = True
    return mask


def schedule_cost(mask: np.ndarray, price: np.ndarray, on_kw: float) -> float:
    """$ paid for running at *on_kw* during the masked minutes."""
    mask = np.asarray(mask, dtype=bool)
    price = np.asarray(price, dtype=np.float64)
    if mask.shape != price.shape:
        raise ValueError("mask and price must be aligned")
    return float(on_kw * price[mask].sum() / 60.0)
