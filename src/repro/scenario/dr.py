"""Seeded demand-response events and scenario tariff selection.

A DR event is a grid-level window (one per day at most) during which the
utility layers an incentive on top of the base tariff: consuming inside
the window costs more, so a kWh the EMS shifts *out* of the window is
worth base + incentive.  Events are drawn per day from
``hash_seed(seed, "dr", day_of_year)`` so any day's event schedule is
reproducible in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.pricing import (
    DemandResponsePlan,
    PricePlan,
    RealTimeRatePlan,
    VariableRatePlan,
)
from repro.rng import hash_seed

__all__ = [
    "DREvent",
    "generate_dr_events",
    "plan_events",
    "scenario_price_plan",
]


@dataclass(frozen=True)
class DREvent:
    """One grid demand-response window with its incentive price."""

    day_of_year: int
    start_hour: float
    end_hour: float
    incentive_per_kwh: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_hour < self.end_hour <= 24.0:
            raise ValueError("need 0 <= start_hour < end_hour <= 24")
        if self.incentive_per_kwh < 0:
            raise ValueError("incentive_per_kwh must be >= 0")


def generate_dr_events(
    n_days: int,
    start_day: int = 0,
    rate: float = 0.3,
    incentive_per_kwh: float = 0.25,
    duration_hours: float = 2.0,
    seed: int = 0,
) -> tuple[DREvent, ...]:
    """Seeded grid-event schedule: at most one event per day.

    Each day fires an event with probability *rate*; its start is drawn
    uniformly inside the evening stress band (14:00 to 21:00 minus the
    duration), mirroring real capacity-driven DR programs.
    """
    if n_days < 0:
        raise ValueError("n_days must be >= 0")
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    if not 0.0 < duration_hours <= 24.0:
        raise ValueError("duration_hours must be in (0, 24]")
    events: list[DREvent] = []
    for day in range(start_day, start_day + n_days):
        rng = np.random.default_rng(hash_seed(seed, "dr", day))
        if rng.random() >= rate:
            continue
        latest = max(14.0, 21.0 - duration_hours)
        start = float(rng.uniform(14.0, latest)) if latest > 14.0 else 14.0
        end = min(start + duration_hours, 24.0)
        events.append(
            DREvent(
                day_of_year=day,
                start_hour=start,
                end_hour=end,
                incentive_per_kwh=float(incentive_per_kwh),
            )
        )
    return tuple(events)


def plan_events(
    events: tuple[DREvent, ...],
) -> tuple[tuple[float, float, float, float], ...]:
    """Convert :class:`DREvent` rows to the tuple rows
    :class:`repro.data.pricing.DemandResponsePlan` consumes."""
    return tuple(
        (float(e.day_of_year), e.start_hour, e.end_hour, e.incentive_per_kwh)
        for e in events
    )


def scenario_price_plan(scenario, data) -> PricePlan:
    """The tariff of a scenario run.

    ``tou`` is the existing :class:`VariableRatePlan`, ``realtime`` the
    closed-form :class:`RealTimeRatePlan`, and ``dr`` layers a seeded
    event schedule (spanning the run's days) on the TOU base.
    """
    if scenario.pricing == "tou":
        return VariableRatePlan()
    if scenario.pricing == "realtime":
        return RealTimeRatePlan()
    if scenario.pricing == "dr":
        events = generate_dr_events(
            n_days=data.n_days,
            start_day=data.start_day,
            rate=scenario.dr_event_rate,
            incentive_per_kwh=scenario.dr_incentive_per_kwh,
            duration_hours=scenario.dr_duration_hours,
            seed=scenario.seed,
        )
        return DemandResponsePlan(base=VariableRatePlan(), events=plan_events(events))
    raise ValueError(f"unknown pricing regime {scenario.pricing!r}")
