"""Seeded query load generator for the serving layer.

Simulates ``n`` residences querying for their next-hour schedule: each
simulated residence maps onto a trained residence of the snapshot's
config (round-robin), with its metered readings drawn from a freshly
generated day and jittered per query (random day offset + per-device
scale), so a 100k-residence load test exercises realistic, distinct
traces without training 100k homes.  Fully deterministic given
``seed`` — the bench, the CLI demo and the tests all share it.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.config import PFDRLConfig
from repro.data.generator import generate_neighborhood
from repro.rng import hash_seed
from repro.serve.snapshot import ScheduleQuery

__all__ = ["iter_queries", "make_queries", "default_trace_minutes"]


def default_trace_minutes(config: PFDRLConfig) -> int:
    """Enough minutes for several model-backed forecast refreshes.

    The first ``window`` minutes run on the persistence fallback; six
    horizons past that exercises the real forecaster path a few times —
    the serving equivalent of "the next hour" at the run's geometry.
    """
    horizon = int(config.forecast.horizon)
    return min(
        int(config.data.minutes_per_day),
        int(config.forecast.window) + 6 * horizon,
    )


def iter_queries(
    config: PFDRLConfig,
    n_queries: int,
    *,
    trace_minutes: int | None = None,
    seed: int = 0,
) -> Iterator[ScheduleQuery]:
    """Yield *n_queries* deterministic simulated-residence queries."""
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    trace_minutes = trace_minutes or default_trace_minutes(config)
    # A fresh neighbourhood (different day seed) provides the metered
    # readings — same homes, unseen data, exactly like deployment.
    dataset = generate_neighborhood(
        config.data, seed=hash_seed(config.data.seed, "serve-load")
    )
    n_trained = int(config.data.n_residences)
    total = dataset.n_minutes
    if trace_minutes > total:
        raise ValueError(
            f"trace_minutes {trace_minutes} exceeds the generated "
            f"{total}-minute stream"
        )
    base = {
        rid: {dev: trace.power_kw for dev, trace in dataset[rid]}
        for rid in range(n_trained)
    }
    rng = np.random.default_rng(hash_seed(seed, "serve-queries"))
    max_offset = total - trace_minutes
    for qi in range(n_queries):
        rid = qi % n_trained
        offset = int(rng.integers(0, max_offset + 1))
        traces = base[rid]
        scales = rng.uniform(0.85, 1.15, size=len(traces))
        readings = {
            dev: series[offset : offset + trace_minutes] * scale
            for (dev, series), scale in zip(traces.items(), scales)
        }
        yield ScheduleQuery(
            residence_id=rid,
            readings=readings,
            t0=offset % int(config.data.minutes_per_day),
        )


def make_queries(
    config: PFDRLConfig,
    n_queries: int,
    *,
    trace_minutes: int | None = None,
    seed: int = 0,
) -> list[ScheduleQuery]:
    """Materialised :func:`iter_queries` (small bursts, tests, CLI)."""
    return list(
        iter_queries(config, n_queries, trace_minutes=trace_minutes, seed=seed)
    )
