"""Online serving layer over the checkpoint store (DESIGN.md §14).

The deployment loop the paper presumes — a hub querying a trained
per-residence EMS policy continuously — as a real subsystem:

- :mod:`repro.serve.snapshot` — :class:`ModelSnapshot`: a checkpoint
  loaded as an immutable (read-only-enforced) serving artifact; batch
  query answering through the vectorised greedy path, bit-identical to
  the online minute loop.
- :mod:`repro.serve.engine` — :class:`ServingEngine`: direct or
  threaded micro-batched serving with atomic generation hot-swap and
  ``repro.obs`` telemetry.
- :mod:`repro.serve.watcher` — :class:`SnapshotWatcher`: store polling
  + off-path snapshot loading; :func:`republish_latest` hot-swap drill.
- :mod:`repro.serve.loadgen` — seeded simulated-residence query
  streams for the bench, the CLI demo and the tests.
"""

from repro.serve.engine import PendingAnswer, ServingEngine
from repro.serve.loadgen import default_trace_minutes, iter_queries, make_queries
from repro.serve.snapshot import (
    ModelSnapshot,
    ScheduleAnswer,
    ScheduleQuery,
    SnapshotError,
)
from repro.serve.watcher import SnapshotWatcher, republish_latest

__all__ = [
    "ModelSnapshot",
    "ScheduleQuery",
    "ScheduleAnswer",
    "SnapshotError",
    "ServingEngine",
    "PendingAnswer",
    "SnapshotWatcher",
    "republish_latest",
    "iter_queries",
    "make_queries",
    "default_trace_minutes",
]
