"""The serving engine: batched query answering + atomic hot-swap.

:class:`ServingEngine` holds the *active* :class:`ModelSnapshot` behind
a single reference.  Two serving styles share it:

- **Direct**: :meth:`answer_batch` / :meth:`answer` run on the caller's
  thread — one snapshot read per batch, so a whole batch is always
  answered by one generation.
- **Threaded**: :meth:`start` spawns a worker that drains a queue of
  :meth:`submit`-ted queries in micro-batches (up to ``max_batch``),
  fulfilling :class:`PendingAnswer` futures.  This is the load-test /
  hub-gateway shape: many concurrent clients, one vectorised matmul per
  micro-batch.

Hot-swap protocol (:meth:`swap`): the active-snapshot reference is
replaced under a lock; it is read **once per batch**, so any batch in
flight finishes on the snapshot it started with while the next batch
picks up the new generation.  Nothing blocks, nothing drops — answers
carry their ``generation`` stamp so callers can audit exactly which
checkpoint served them.

Telemetry (``repro.obs``): ``serve.queries`` / ``serve.batches`` /
``serve.swaps`` counters, a ``serve.batch`` service-time timer, and a
``serve.queue_depth`` gauge refreshed as the worker drains.
"""

from __future__ import annotations

import queue
import threading
import time

from repro.obs.telemetry import Telemetry, ensure_telemetry
from repro.serve.snapshot import ModelSnapshot, ScheduleAnswer, ScheduleQuery

__all__ = ["ServingEngine", "PendingAnswer"]

_STOP = object()


class PendingAnswer:
    """Future for one submitted query (threaded serving mode)."""

    __slots__ = ("query", "submitted_at", "_event", "_answer", "_error")

    def __init__(self, query: ScheduleQuery, submitted_at: float) -> None:
        self.query = query
        self.submitted_at = submitted_at
        self._event = threading.Event()
        self._answer: ScheduleAnswer | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> ScheduleAnswer:
        """Block until answered; re-raises the engine-side error if any."""
        if not self._event.wait(timeout):
            raise TimeoutError("query not answered in time")
        if self._error is not None:
            raise self._error
        assert self._answer is not None
        return self._answer

    # engine side -------------------------------------------------------
    def _fulfill(self, answer: ScheduleAnswer) -> None:
        self._answer = answer
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class ServingEngine:
    """Batched scheduler over an atomically swappable model snapshot."""

    def __init__(
        self,
        snapshot: ModelSnapshot,
        telemetry: Telemetry | None = None,
        max_batch: int = 64,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._snapshot = snapshot
        self.telemetry = ensure_telemetry(telemetry)
        self.max_batch = int(max_batch)
        self._swap_lock = threading.Lock()
        self._queue: "queue.Queue" = queue.Queue()
        self._thread: threading.Thread | None = None
        self.queries_served = 0
        self.batches_served = 0
        self.swaps = 0
        #: Queries submitted but never answered (target: always 0 — the
        #: worker drains the queue fully before stopping).
        self.dropped = 0

    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> ModelSnapshot:
        """The active snapshot (what the *next* batch will be served by)."""
        return self._snapshot

    @property
    def generation(self) -> str:
        return self._snapshot.generation

    def swap(self, snapshot: ModelSnapshot) -> ModelSnapshot:
        """Atomically make *snapshot* active; returns the previous one.

        In-flight batches keep the snapshot reference they already read
        — they finish on the old generation; subsequent batches serve
        from the new one.  Zero queries are dropped or blocked.
        """
        with self._swap_lock:
            old, self._snapshot = self._snapshot, snapshot
            self.swaps += 1
        self.telemetry.count("serve.swaps")
        self.telemetry.event(
            "serve.swap",
            generation=snapshot.generation,
            step=snapshot.step,
            previous=old.generation,
        )
        return old

    # ------------------------------------------------------------------
    def answer_batch(self, queries: list[ScheduleQuery]) -> list[ScheduleAnswer]:
        """Answer *queries* now, on the caller's thread, as one batch."""
        snapshot = self._snapshot  # single read: one generation per batch
        start = time.perf_counter()
        with self.telemetry.timer("serve.batch"):
            answers = snapshot.schedule(queries)
        elapsed = time.perf_counter() - start
        for answer in answers:
            answer.latency_s = elapsed
        self.queries_served += len(answers)
        self.batches_served += 1
        self.telemetry.count("serve.queries", len(answers))
        self.telemetry.count("serve.batches")
        return answers

    def answer(self, query: ScheduleQuery) -> ScheduleAnswer:
        return self.answer_batch([query])[0]

    # ------------------------------------------------------------------
    # Threaded micro-batching
    def start(self) -> None:
        """Spawn the worker thread draining submitted queries."""
        if self._thread is not None:
            raise RuntimeError("engine already started")
        self._thread = threading.Thread(
            target=self._run, name="serve-engine", daemon=True
        )
        self._thread.start()

    def submit(self, query: ScheduleQuery) -> PendingAnswer:
        """Enqueue one query; returns a future (requires :meth:`start`)."""
        if self._thread is None:
            raise RuntimeError("start() the engine before submitting")
        pending = PendingAnswer(query, time.perf_counter())
        self._queue.put(pending)
        self.telemetry.gauge("serve.queue_depth", self._queue.qsize())
        return pending

    def stop(self) -> None:
        """Drain every queued query, then join the worker (zero drops)."""
        if self._thread is None:
            return
        self._queue.put(_STOP)
        self._thread.join()
        self._thread = None
        # FIFO guarantees everything enqueued before stop() was served;
        # anything still queued was submitted *after* stop and is lost.
        leftovers = 0
        while True:
            try:
                pending = self._queue.get_nowait()
            except queue.Empty:
                break
            if pending is _STOP:
                continue
            leftovers += 1
            pending._fail(RuntimeError("serving engine stopped"))
        self.dropped += leftovers
        if leftovers:
            self.telemetry.count("serve.dropped", leftovers)

    def _run(self) -> None:
        stopping = False
        while not stopping:
            first = self._queue.get()
            if first is _STOP:
                break
            batch = [first]
            while len(batch) < self.max_batch:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _STOP:
                    stopping = True
                    break
                batch.append(item)
            self.telemetry.gauge("serve.queue_depth", self._queue.qsize())
            try:
                answers = self.answer_batch([p.query for p in batch])
            except Exception as exc:  # per-batch isolation: engine survives
                for pending in batch:
                    pending._fail(exc)
                continue
            now = time.perf_counter()
            for pending, answer in zip(batch, answers):
                answer.latency_s = now - pending.submitted_at
                pending._fulfill(answer)
