"""Immutable model snapshots loaded from the checkpoint store.

A :class:`ModelSnapshot` is the deployable unit of this repo: one
checkpoint (forecasters + DQN weights) rebound into a read-only
:class:`repro.rl.batch.StackedQNet` arena plus frozen per-residence
forecasters, verified against the serving configuration's digest.  It
answers "next-hour schedule" queries (:class:`ScheduleQuery` →
:class:`ScheduleAnswer`) for whole batches at once through the
vectorised greedy path, bit-identical to streaming the same readings
through an :class:`repro.core.OnlineController` built from the same
checkpoint:

- per device, forecasts refresh block-by-block with the *exact*
  controller rule (:func:`repro.core.controller.forecast_block` —
  persistence until a full lag window exists, then one model prediction
  per horizon boundary);
- actions come from one broadcast matmul over ``(M, T, state_dim)``
  stacked states followed by ``argmax`` — the repo's pinned
  gemm-argmax ≡ per-minute-argmax contract (see ``repro.rl.batch``);
- controlled power uses the training environment's pass-through
  semantics (:func:`repro.rl.env.apply_actions`).

Immutability is enforced, not advisory: every weight stack, every
member-parameter view and every forecaster array is marked
non-writeable, so an accidental in-place update (a stray ``set_weights``
or optimizer step against a serving snapshot) raises instead of
corrupting in-flight queries.  Hot-swap therefore never mutates — a new
checkpoint becomes a *new* snapshot and the engine repoints atomically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.config import PFDRLConfig
from repro.core.controller import DeviceNominals, OnlineController, forecast_block
from repro.core.system import config_digest
from repro.data.generator import generate_neighborhood
from repro.federated.dfl import DFLClient
from repro.nn.serialization import set_weights
from repro.persist.checkpoint import CheckpointError
from repro.persist.store import CheckpointStore
from repro.rl.batch import StackedQNet
from repro.rl.env import apply_actions
from repro.rl.qnet import build_states, make_qnet

__all__ = [
    "ModelSnapshot",
    "ScheduleQuery",
    "ScheduleAnswer",
    "SnapshotError",
]


class SnapshotError(RuntimeError):
    """A checkpoint cannot be served (wrong stage, unknown residence…)."""


@dataclass(frozen=True)
class ScheduleQuery:
    """One residence asks for its next-hour(s) schedule.

    ``readings`` maps every managed device to an aligned per-minute kW
    trace (what the hub metered); ``t0`` is the absolute minute-of-day
    phase of the first reading (the controller's calendar anchor).
    Queries are stateless: each one is answered exactly as a fresh
    :class:`~repro.core.OnlineController` streaming these readings from
    its first minute would act.
    """

    residence_id: int
    readings: Mapping[str, np.ndarray]
    t0: int = 0


@dataclass
class ScheduleAnswer:
    """Per-device minute schedule plus the bookkeeping a hub wants."""

    residence_id: int
    #: Per-device actions per minute (0 = off, 1 = standby, 2 = on).
    actions: dict[str, np.ndarray]
    #: The forecast trace the decisions were made against (kW).
    predicted_kw: dict[str, np.ndarray]
    #: The draw the schedule produces under pass-through semantics (kW).
    controlled_kw: dict[str, np.ndarray]
    #: Energy the schedule withholds vs the metered readings (kWh).
    saved_kwh: float
    #: Which snapshot answered (``ckpt-XXXXXXXX``) — hot-swap audit trail.
    generation: str
    #: Service latency stamped by the engine (0 when answered directly).
    latency_s: float = 0.0


@dataclass(frozen=True)
class _Residence:
    """One residence's serving-side view: frozen models + nominals."""

    forecasters: Mapping[str, object]
    nominals: Mapping[str, DeviceNominals]
    #: device (or ``"*"`` in residence scope) → row in the Q-net stack.
    rows: Mapping[str, int]


def _freeze_tree(obj, seen: set[int]) -> None:
    """Mark every ndarray reachable from *obj* read-only (best effort)."""
    if id(obj) in seen:
        return
    seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        obj.flags.writeable = False
        return
    if isinstance(obj, dict):
        for v in obj.values():
            _freeze_tree(v, seen)
        return
    if isinstance(obj, (list, tuple)):
        for v in obj:
            _freeze_tree(v, seen)
        return
    if hasattr(obj, "__dict__"):
        for v in vars(obj).values():
            _freeze_tree(v, seen)


class _GreedyAgent:
    """Greedy ``act()`` adapter over one frozen member Q-net.

    Computes exactly what :meth:`repro.rl.dqn.DQNAgent.act` computes in
    greedy mode (batch-of-1 forward, first-index argmax) — used for the
    per-request :class:`OnlineController` baseline and the equivalence
    tests.
    """

    __slots__ = ("qnet",)

    def __init__(self, qnet) -> None:
        self.qnet = qnet

    def act(self, state: np.ndarray, greedy: bool = True) -> int:
        q = self.qnet.forward(np.asarray(state, dtype=np.float64)[None, :])[0]
        return int(np.argmax(q))


class ModelSnapshot:
    """Read-only serving view over one checkpoint.

    Build with :meth:`load`; never construct incrementally.  All model
    arrays are frozen and the DQN weights of every (residence, slot)
    agent live as rows of one :class:`StackedQNet`, so a batch of
    queries across residences is one broadcast matmul.
    """

    def __init__(
        self,
        config: PFDRLConfig,
        step: int,
        residences: dict[int, _Residence],
        stack: StackedQNet,
        meta: dict,
    ) -> None:
        self.config = config
        self.step = int(step)
        self.generation = f"ckpt-{self.step:08d}"
        self.meta = dict(meta)
        self.minutes_per_day = int(config.data.minutes_per_day)
        self._residences = residences
        self.stack = stack

    # ------------------------------------------------------------------
    @classmethod
    def load(
        cls,
        store: CheckpointStore,
        config: PFDRLConfig,
        step: int | None = None,
        *,
        forecast_mode: str = "decentralized",
        sharing: str = "personalized",
        verify: bool = True,
    ) -> "ModelSnapshot":
        """Load a checkpoint (default: latest) as a frozen snapshot.

        Refuses checkpoints written under a different configuration or
        pipeline variant (digest guard, same rule as resume) and
        checkpoints that predate the EMS training stage (nothing to
        serve yet).
        """
        state, manifest = store.load(step=step, verify=verify)
        meta = dict(manifest.get("meta", {}))
        recorded = meta.get("config_sha256")
        expected = config_digest(config, forecast_mode, sharing)
        if recorded is not None and recorded != expected:
            raise CheckpointError(
                "checkpoint was written under a different configuration "
                f"(digest {recorded[:12]}… vs {expected[:12]}…); serving it "
                "under this config would bind weights to the wrong homes"
            )
        if "dfl" not in state or "drl" not in state:
            raise SnapshotError(
                "checkpoint predates the EMS training stage — nothing to serve"
            )
        ckpt_step = int(meta.get("step", step if step is not None else -1))
        if ckpt_step < 0:
            ckpt_step = store.latest_step() or 0

        # The dataset is regenerated deterministically from the config
        # (exactly as training does) — it carries the per-residence
        # device nominals the checkpoint does not store.
        dataset = generate_neighborhood(config.data)
        clients_state = state["dfl"]["clients"]
        agents_state = state["drl"]["agents"]

        # Rebuild the agents' Q-nets in sorted key order and stack them.
        def _key(item):
            rid, slot = item.split("/", 1)
            return (int(rid), slot)

        qnets = []
        rows_by_key: dict[tuple[int, str], int] = {}
        for key in sorted(agents_state, key=_key):
            rid_s, slot = key.split("/", 1)
            qnet = make_qnet(config.dqn, rng=0)
            set_weights(qnet, [np.asarray(w) for w in agents_state[key]["qnet"]])
            rows_by_key[(int(rid_s), slot)] = len(qnets)
            qnets.append(qnet)
        stack = StackedQNet(qnets)

        residences: dict[int, _Residence] = {}
        for rid_s, client_state in clients_state.items():
            rid = int(rid_s)
            traces = dict(dataset[rid])
            client = DFLClient(
                rid,
                {dev: trace.power_kw for dev, trace in traces.items()},
                config.forecast,
                minutes_per_day=config.data.minutes_per_day,
                seed=config.seed,
            )
            client.load_state_dict(client_state)
            nominals = {
                dev: DeviceNominals(trace.on_kw, trace.standby_kw)
                for dev, trace in traces.items()
            }
            rows = {
                slot: row
                for (r, slot), row in rows_by_key.items()
                if r == rid
            }
            residences[rid] = _Residence(
                forecasters=client.forecasters, nominals=nominals, rows=rows
            )

        snapshot = cls(config, ckpt_step, residences, stack, meta)
        snapshot._freeze()
        return snapshot

    def _freeze(self) -> None:
        """Make every model array read-only — snapshots never mutate."""
        for arr in self.stack._weights + self.stack._biases:
            arr.flags.writeable = False
        # Member parameter views were carved before the stacks froze, so
        # their writeable flags must drop explicitly.
        for qnet in self.stack.qnets:
            for p in qnet.parameters():
                p.data.flags.writeable = False
        seen: set[int] = set()
        for res in self._residences.values():
            for fc in res.forecasters.values():
                _freeze_tree(fc, seen)

    # ------------------------------------------------------------------
    def residences(self) -> tuple[int, ...]:
        return tuple(sorted(self._residences))

    def devices(self, residence_id: int) -> tuple[str, ...]:
        return tuple(self._residence(residence_id).forecasters)

    def _residence(self, residence_id: int) -> _Residence:
        try:
            return self._residences[int(residence_id)]
        except KeyError:
            raise SnapshotError(
                f"residence {residence_id} is not in this snapshot "
                f"(has {self.residences()})"
            ) from None

    def row_for(self, residence_id: int, device: str) -> int:
        """Stack row of the agent deciding for (residence, device)."""
        rows = self._residence(residence_id).rows
        if "*" in rows:  # residence scope: one agent for all devices
            return rows["*"]
        try:
            return rows[device]
        except KeyError:
            raise SnapshotError(
                f"no agent for device {device!r} of residence {residence_id}"
            ) from None

    # ------------------------------------------------------------------
    def controller(self, residence_id: int, t0: int = 0) -> OnlineController:
        """A fresh per-request :class:`OnlineController` on this snapshot.

        The serving engine's per-request baseline (and the equivalence
        oracle in tests): streams minutes through the frozen models one
        at a time.  Only available in residence agent scope — the
        controller interface drives one agent for all devices.
        """
        res = self._residence(residence_id)
        if "*" not in res.rows:
            raise SnapshotError(
                "per-request controllers need residence agent scope "
                "(one agent per home); this snapshot is device-scoped"
            )
        agent = _GreedyAgent(self.stack.qnets[res.rows["*"]])
        return OnlineController(
            forecasters=dict(res.forecasters),
            agent=agent,
            nominals=dict(res.nominals),
            minutes_per_day=self.minutes_per_day,
            t0=t0,
        )

    # ------------------------------------------------------------------
    def schedule(self, queries: list[ScheduleQuery]) -> list[ScheduleAnswer]:
        """Answer a batch of queries through the vectorised greedy path.

        Forecast blocks are computed per (query, device) with the exact
        controller refresh rule; all per-minute Q evaluations across the
        whole batch then collapse into one broadcast matmul per aligned
        trace length.
        """
        # (trace length) -> list of (query idx, device idx, row, states)
        groups: dict[int, list[tuple[int, int, int, np.ndarray]]] = {}
        prepared: list[list[tuple[str, np.ndarray, np.ndarray, DeviceNominals]]] = []
        for qi, query in enumerate(queries):
            res = self._residence(query.residence_id)
            if set(query.readings) != set(res.forecasters):
                raise ValueError(
                    f"query for residence {query.residence_id} must cover "
                    f"exactly {sorted(res.forecasters)}, got "
                    f"{sorted(query.readings)}"
                )
            lengths = {np.asarray(t).shape[0] for t in query.readings.values()}
            if len(lengths) != 1:
                raise ValueError("query readings must be aligned")
            (n_minutes,) = lengths
            if n_minutes < 1:
                raise ValueError("query readings must cover at least one minute")
            devs: list[tuple[str, np.ndarray, np.ndarray, DeviceNominals]] = []
            for device in query.readings:
                real = np.asarray(query.readings[device], dtype=np.float64)
                if real.ndim != 1:
                    raise ValueError(f"reading for {device!r} must be 1-D")
                if (real < 0).any():
                    raise ValueError(f"negative reading for {device!r}")
                fc = res.forecasters[device]
                nom = res.nominals[device]
                predicted = np.empty(n_minutes)
                for lo in range(0, n_minutes, fc.horizon):
                    block, _ = forecast_block(
                        fc, real[:lo], nom, lo, self.minutes_per_day, t0=query.t0
                    )
                    predicted[lo : lo + fc.horizon] = block[
                        : min(fc.horizon, n_minutes - lo)
                    ]
                states = build_states(
                    predicted, real, nom.on_kw, nom.standby_kw, device
                )
                row = self.row_for(query.residence_id, device)
                groups.setdefault(n_minutes, []).append(
                    (qi, len(devs), row, states)
                )
                devs.append((device, real, predicted, nom))
            prepared.append(devs)

        # One stacked forward + argmax per distinct trace length.
        actions_by_item: dict[tuple[int, int], np.ndarray] = {}
        for items in groups.values():
            stacked = np.stack([states for (_, _, _, states) in items])
            rows = np.asarray([row for (_, _, row, _) in items])
            q_values = self.stack.forward_batch(stacked, rows=rows)
            acts = q_values.argmax(axis=2).astype(np.int64)
            for (qi, di, _, _), a in zip(items, acts):
                actions_by_item[(qi, di)] = a

        answers: list[ScheduleAnswer] = []
        for qi, query in enumerate(queries):
            actions: dict[str, np.ndarray] = {}
            predicted_kw: dict[str, np.ndarray] = {}
            controlled_kw: dict[str, np.ndarray] = {}
            saved = 0.0
            for di, (device, real, predicted, nom) in enumerate(prepared[qi]):
                a = actions_by_item[(qi, di)]
                controlled = apply_actions(a, real, nom.standby_kw)
                actions[device] = a
                predicted_kw[device] = predicted
                controlled_kw[device] = controlled
                saved += float((real - controlled).sum()) / 60.0
            answers.append(
                ScheduleAnswer(
                    residence_id=int(query.residence_id),
                    actions=actions,
                    predicted_kw=predicted_kw,
                    controlled_kw=controlled_kw,
                    saved_kwh=saved,
                    generation=self.generation,
                )
            )
        return answers
