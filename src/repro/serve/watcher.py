"""Hot-swap: watch the checkpoint store, load new snapshots off-path.

:class:`SnapshotWatcher` polls a :class:`repro.persist.CheckpointStore`
for a newer step than the engine's active snapshot.  Loading (NPZ read,
weight restacking, freezing) happens entirely on the watcher's thread —
the serving path never blocks on it — and only the final
:meth:`ServingEngine.swap` repoints the active reference.  A publish
racing the poll (trainer mid-``os.replace``, pruning) surfaces as a
:class:`CheckpointError`; the watcher counts it and simply retries on
the next poll, so a torn read can never take serving down.

:func:`republish_latest` re-saves the newest checkpoint under the next
step number — the hot-swap drill used by the CLI ``serve --swap-demo``,
the bench and the tests: the new generation must answer identically.
"""

from __future__ import annotations

import threading

from repro.config import PFDRLConfig
from repro.obs.telemetry import Telemetry, ensure_telemetry
from repro.persist.checkpoint import CheckpointError
from repro.persist.store import CheckpointStore
from repro.serve.engine import ServingEngine
from repro.serve.snapshot import ModelSnapshot

__all__ = ["SnapshotWatcher", "republish_latest"]


def republish_latest(store: CheckpointStore) -> int:
    """Re-save the latest checkpoint as a new step; returns the step.

    The state and config digest are unchanged — only the step (and so
    the serving generation) advances, which is exactly what a hot-swap
    drill needs: same answers, new generation.
    """
    state, manifest = store.load()
    meta = dict(manifest.get("meta", {}))
    step = (store.latest_step() or 0) + 1
    meta["step"] = step
    store.save(step, state, meta=meta)
    return step


class SnapshotWatcher:
    """Poll the store; swap newer checkpoints into the engine."""

    def __init__(
        self,
        engine: ServingEngine,
        store: CheckpointStore,
        config: PFDRLConfig,
        *,
        forecast_mode: str = "decentralized",
        sharing: str = "personalized",
        verify: bool = True,
        poll_interval: float = 1.0,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.engine = engine
        self.store = store
        self.config = config
        self.forecast_mode = forecast_mode
        self.sharing = sharing
        self.verify = verify
        self.poll_interval = float(poll_interval)
        self.telemetry = ensure_telemetry(telemetry)
        self.loads = 0
        self.load_errors = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def check_once(self) -> bool:
        """One synchronous poll; returns True when a swap happened.

        Deterministic building block for tests and the CLI demo; the
        background thread just calls this on a cadence.
        """
        latest = self.store.latest_step()
        current = self.engine.snapshot.step
        if latest is None or latest == current:
            return False
        try:
            snapshot = ModelSnapshot.load(
                self.store,
                self.config,
                forecast_mode=self.forecast_mode,
                sharing=self.sharing,
                verify=self.verify,
            )
        except CheckpointError:
            # Publish raced the poll (torn directory, pruned step) —
            # keep serving the current generation, retry next poll.
            self.load_errors += 1
            self.telemetry.count("serve.load_errors")
            return False
        if snapshot.step == current:
            return False
        self.loads += 1
        self.telemetry.count("serve.snapshot_loads")
        self.engine.swap(snapshot)
        return True

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Poll on a background daemon thread every ``poll_interval``."""
        if self._thread is not None:
            raise RuntimeError("watcher already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="serve-watcher", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.check_once()
            except Exception:
                # The watcher must never kill serving; count and go on.
                self.load_errors += 1
                self.telemetry.count("serve.load_errors")
            self._stop.wait(self.poll_interval)
