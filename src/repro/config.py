"""Configuration dataclasses for every hyperparameter in the paper (§4).

All experiment-facing knobs live here as frozen dataclasses so that a
configuration can be hashed, logged, and compared.  Defaults follow the
paper's *Experiment Settings* section:

- DQN: learning rate 0.001, discount 0.9, replay memory capacity 2000,
  target-network replace iteration 100, 8 hidden layers x 100 neurons with
  ReLU, 3 output Q-values.
- Personalization: ``alpha`` base layers shared (paper's best: 6 of 8).
- Broadcast periods: ``beta`` hours for forecaster weights (best 12),
  ``gamma`` hours for DRL base layers (best 12).
- Data: 80/20 train/test split.

Scale knobs (``n_residences``, ``n_days``, ``minutes_per_day``) default to
laptop-size values; the paper's full scale (669 homes, 5 years) is reachable
by overriding them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "DataConfig",
    "ForecastConfig",
    "DQNConfig",
    "HierarchyConfig",
    "FederationConfig",
    "TraceConfig",
    "FaultConfig",
    "ScenarioConfig",
    "PFDRLConfig",
    "ExperimentConfig",
    "config_to_dict",
]

# Number of hidden layers in the DRL network (paper: "an 8 hidden layers
# architecture").  ``alpha`` counts how many of these, starting from the
# input side, are treated as *base* (shared) layers.
N_HIDDEN_LAYERS = 8
HIDDEN_WIDTH = 100
N_ACTIONS = 3


@dataclass(frozen=True)
class DataConfig:
    """Synthetic Pecan-Street-like workload parameters."""

    n_residences: int = 8
    n_days: int = 4
    minutes_per_day: int = 1440
    device_types: tuple[str, ...] = ("tv", "hvac", "light", "fridge", "microwave")
    #: Degree of non-IID heterogeneity across residences in [0, 1].
    #: 0 = every home identical; 1 = strongly shifted schedules / scaled loads.
    heterogeneity: float = 0.35
    #: Multiplicative measurement-noise std on the traces.
    noise_std: float = 0.03
    #: Fraction of the trace used for training (paper: 80%).
    train_fraction: float = 0.8
    #: Calendar day-of-year of the first generated day (drives the
    #: seasonal factor; lets experiments place a workload in any month).
    start_day: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_residences < 1:
            raise ValueError("n_residences must be >= 1")
        if self.n_days < 1:
            raise ValueError("n_days must be >= 1")
        if not 0.0 < self.train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        if not 0.0 <= self.heterogeneity <= 1.0:
            raise ValueError("heterogeneity must be in [0, 1]")
        if self.noise_std < 0:
            raise ValueError("noise_std must be >= 0")
        if len(self.device_types) == 0:
            raise ValueError("need at least one device type")


@dataclass(frozen=True)
class ForecastConfig:
    """Per-device load-forecasting model parameters."""

    #: Which forecaster to use: one of the keys in ``repro.forecast.registry``.
    model: str = "lstm"
    #: Lag window (minutes of history fed to the model).
    window: int = 60
    #: Forecast horizon (paper predicts the next hour at minute granularity).
    horizon: int = 60
    #: Local SGD epochs per federated round.
    local_epochs: int = 2
    learning_rate: float = 0.01
    batch_size: int = 32
    hidden_size: int = 32
    #: Append sin/cos harmonics of the target's minute-of-day.
    time_features: bool = True
    #: Number of harmonic pairs (frequencies 1..K per day).
    time_harmonics: int = 4
    #: Spacing between training windows; None -> horizon // 4 (overlapping
    #: targets give NN models enough samples at laptop scale).
    train_stride: int | None = None
    #: Denominator floor for the horizon-energy accuracy metric, as a
    #: fraction of the window's full-on energy.
    accuracy_floor: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window < 1 or self.horizon < 1:
            raise ValueError("window and horizon must be >= 1")
        if self.local_epochs < 1:
            raise ValueError("local_epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        if self.train_stride is not None and self.train_stride < 1:
            raise ValueError("train_stride must be >= 1")
        if self.time_harmonics < 1:
            raise ValueError("time_harmonics must be >= 1")
        if not 0.0 <= self.accuracy_floor <= 1.0:
            raise ValueError("accuracy_floor must be in [0, 1]")

    @property
    def n_extra(self) -> int:
        """Extra (non-lag) feature columns."""
        return 2 * self.time_harmonics if self.time_features else 0

    @property
    def input_dim(self) -> int:
        """Model input width: lag window plus optional time features."""
        return self.window + self.n_extra

    @property
    def stride(self) -> int:
        """Effective training-window stride."""
        return self.train_stride if self.train_stride is not None else max(1, self.horizon // 4)


@dataclass(frozen=True)
class DQNConfig:
    """DQN hyperparameters exactly per §4 Experiment Settings."""

    learning_rate: float = 0.001
    discount: float = 0.9
    memory_capacity: int = 2000
    target_replace_iter: int = 100
    n_hidden_layers: int = N_HIDDEN_LAYERS
    hidden_width: int = HIDDEN_WIDTH
    n_actions: int = N_ACTIONS
    epsilon_start: float = 1.0
    epsilon_end: float = 0.05
    epsilon_decay_steps: int = 2000
    batch_size: int = 32
    #: Huber loss transition point (paper adopts Huber loss).
    huber_delta: float = 1.0
    #: Run a learn step every k-th observed transition (1 = paper's
    #: every-step training; >1 trades fidelity for speed at small scale).
    learn_every: int = 1
    #: Multiplier applied to rewards before TD learning (standard value
    #: normalisation: Table 1 rewards of +-30 with discount 0.9 produce
    #: returns up to 300, badly conditioned for a fresh network and for
    #: the Huber delta).  1.0 reproduces the paper verbatim; the scaled
    #: profiles use 1/30.
    reward_scale: float = 1.0
    #: Double-DQN target (van Hasselt 2016): select the argmax action
    #: with the online network, evaluate it with the target network.
    #: False reproduces the paper's vanilla DQN; available as an
    #: extension/ablation.
    double_q: bool = False
    #: Store the stacked-engine Adam moment arrays (``StackedAdam``) in
    #: float32 instead of float64.  The learn step at paper-exact width
    #: is memory-bound in the moment updates; halving their footprint
    #: lifts that ceiling.  Off by default — float64 keeps the bitwise
    #: serial-exact contract; float32 is tolerance-equivalent (pinned by
    #: a parity test) and only affects the stacked engine.
    float32_moments: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.discount <= 1.0:
            raise ValueError("discount must be in [0, 1]")
        if self.memory_capacity < 1:
            raise ValueError("memory_capacity must be >= 1")
        if self.n_hidden_layers < 1:
            raise ValueError("n_hidden_layers must be >= 1")
        if not 0.0 <= self.epsilon_end <= self.epsilon_start <= 1.0:
            raise ValueError("need 0 <= epsilon_end <= epsilon_start <= 1")
        if self.learn_every < 1:
            raise ValueError("learn_every must be >= 1")
        if self.reward_scale <= 0:
            raise ValueError("reward_scale must be > 0")


@dataclass(frozen=True)
class HierarchyConfig:
    """Two-tier (cluster-of-clusters) federation parameters.

    Residences are partitioned into neighbourhood clusters of
    ``cluster_size`` (contiguous by residence index; the last cluster
    may be smaller).  Each cluster is headed by an aggregator: members
    upload base layers over a reliable star LAN (tier 0), aggregators
    federate cluster means over a sparse ``upper_topology`` (tier 1)
    that rides the ordinary transport stack — so fault injection,
    replayable traces and self-healing compose unchanged on the upper
    tier.  Personalization layers never leave the residence.

    ``participation`` enables seeded partial participation: each γ
    round only that fraction of every cluster's members uploads (a pure
    function of ``seed`` and the round index, so resume is trivially
    deterministic); the aggregator fills in absentees from its cached
    last uploads, discounted by age like the PR-1 staleness path and
    dropped entirely past ``staleness_horizon`` rounds.
    """

    cluster_size: int = 8
    upper_topology: str = "ring"  # full | ring | star
    upper_hub: int = 0
    #: Fraction of each cluster's members that uploads per γ round.
    participation: float = 1.0
    #: Floor on the per-cluster sample size (clamped to the cluster size).
    min_participants: int = 1
    #: Cached (non-participating) uploads older than this many rounds are
    #: excluded from the cluster mean; 0 keeps fresh uploads only.
    staleness_horizon: int = 4
    #: Geometric per-round discount applied to cached uploads.
    staleness_decay: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.cluster_size < 1:
            raise ValueError("cluster_size must be >= 1")
        if self.upper_topology not in ("full", "ring", "star"):
            raise ValueError("upper_topology must be one of full|ring|star")
        if self.upper_hub < 0:
            raise ValueError("upper_hub must be >= 0")
        if not 0.0 < self.participation <= 1.0:
            raise ValueError("participation must be in (0, 1]")
        if self.min_participants < 1:
            raise ValueError("min_participants must be >= 1")
        if self.staleness_horizon < 0:
            raise ValueError("staleness_horizon must be >= 0")
        if not 0.0 < self.staleness_decay <= 1.0:
            raise ValueError("staleness_decay must be in (0, 1]")


@dataclass(frozen=True)
class FederationConfig:
    """Decentralized federation parameters.

    ``beta`` and ``gamma`` are broadcast periods in *hours* (paper sweeps
    {0.1, 0.5, 1, 2, 6, 12, 24} and picks 12 for both).  ``alpha`` is the
    number of shared base layers out of ``DQNConfig.n_hidden_layers``
    (paper's best: 6).  ``hierarchy`` (opt-in) replaces the flat γ-round
    mesh with the two-tier cluster federation of
    :class:`HierarchyConfig`; ``None`` keeps the paper's flat topology
    bit-identically.
    """

    alpha: int = 6
    beta_hours: float = 12.0
    gamma_hours: float = 12.0
    topology: str = "full"  # full | ring | star
    hierarchy: HierarchyConfig | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.alpha <= N_HIDDEN_LAYERS:
            raise ValueError(f"alpha must be in [0, {N_HIDDEN_LAYERS}]")
        if self.beta_hours <= 0 or self.gamma_hours <= 0:
            raise ValueError("broadcast periods must be > 0")
        if self.topology not in ("full", "ring", "star"):
            raise ValueError("topology must be one of full|ring|star")


@dataclass(frozen=True)
class TraceConfig:
    """Replayable fault-trace parameters (LinkGuardian-style bursts).

    Production links do not fail i.i.d. per message — they *degrade* for
    stretches of rounds and then get repaired.  A ``TraceConfig``
    describes that burst process; :class:`repro.federated.traces.
    FaultTraceGenerator` expands it (deterministically, from ``seed``)
    against a concrete :class:`~repro.federated.topology.Topology` into a
    :class:`~repro.federated.traces.FaultTrace` of
    ``(round, link, loss_rate)`` episodes that the fault fabric replays:
    while an episode is active, deliveries over that link drop with the
    episode's loss rate (and corrupt with ``corrupt_fraction`` of it)
    instead of the global i.i.d. ``FaultConfig`` rates.

    - ``mttf_rounds`` — mean broadcast rounds between failures per link
      (exponential inter-arrival, per LinkGuardian's generator).
    - ``repair_rounds`` — mean episode duration in rounds (exponential,
      floored at one round).
    - ``loss_rate_min`` / ``loss_rate_max`` — episode loss rates are
      drawn log-uniform in this band (heavy-tailed, per the CorrOpt
      observations LinkGuardian adopts).
    - ``corrupt_fraction`` — fraction of an episode's loss rate that
      manifests as payload corruption rather than silent drop.
    - ``n_rounds`` — trace length; rounds past the end are clean.
    """

    mttf_rounds: float = 50.0
    repair_rounds: float = 5.0
    loss_rate_min: float = 0.05
    loss_rate_max: float = 0.9
    corrupt_fraction: float = 0.0
    n_rounds: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mttf_rounds <= 0 or self.repair_rounds <= 0:
            raise ValueError("mttf_rounds and repair_rounds must be > 0")
        if not 0.0 < self.loss_rate_min <= self.loss_rate_max:
            raise ValueError("need 0 < loss_rate_min <= loss_rate_max")
        if self.loss_rate_max >= 1.0:
            raise ValueError("loss_rate_max must be < 1 (retransmission must be able to succeed)")
        if not 0.0 <= self.corrupt_fraction <= 1.0:
            raise ValueError("corrupt_fraction must be in [0, 1]")
        if self.n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")


@dataclass(frozen=True)
class FaultConfig:
    """Communication-fault model for the federated fabric.

    All rates default to zero: the default config is the paper's perfectly
    reliable residential LAN, and every trainer path is bit-identical to
    the fault-free implementation.  Faults apply to the *decentralized*
    sharing paths (DFL broadcast rounds and the γ-round DRL mesh); the
    centralized baselines keep the ideal link.

    Failure taxonomy (see DESIGN.md "Fault model"):

    - **loss** — each delivery is dropped i.i.d. with ``drop_rate``; the
      sender retransmits up to ``max_retries`` times (retries are counted
      in ``TransportStats.n_retransmits`` so overhead numbers stay honest).
    - **corruption** — with ``corrupt_rate`` a delivered payload is
      damaged (NaN injection or truncation); receivers validate and
      quarantine it before averaging.
    - **delay** — with ``delay_rate`` a delivery lands 1..``max_delay_rounds``
      broadcast events late; staleness-aware aggregation discounts old
      payloads by ``staleness_decay`` per round and rejects anything older
      than ``staleness_horizon`` rounds.
    - **churn** — online agents crash with per-round ``crash_rate`` and
      recover with ``recovery_rate``; ``crashed_agents`` are down for the
      whole run.  A crashed agent is *offline from the fabric* (neither
      sends nor receives) but keeps training locally.
    - **stragglers** — a ``straggler_fraction`` of agents (seeded choice)
      sit out each broadcast round with ``straggler_skip_prob``.
    - **quorum** — a receiver only aggregates when it heard valid payloads
      from at least ``quorum_fraction`` of its topology neighbours;
      otherwise it continues locally and the skip is counted.
    - **trace** — instead of i.i.d. per-message faults, replay a
      :class:`TraceConfig`-generated burst trace: per-link drop/corrupt
      rates follow the trace's active episodes (links outside an episode
      are clean), deterministically and checkpoint-resumably.
    - **self-healing** — with ``selfheal`` on, a
      :class:`~repro.federated.selfheal.LinkHealthMonitor` keeps an EWMA
      loss estimate per link from the per-link transport counters and,
      past ``selfheal_threshold`` (with hysteresis: ``selfheal_restore``
      re-entry threshold plus a ``selfheal_min_rounds`` dwell between
      flips), deactivates the link in a
      :class:`~repro.federated.selfheal.TopologyOverlay` that reroutes
      broadcasts around it — detour paths on ring/star, plain avoidance
      on the full mesh.
    """

    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay_rounds: int = 2
    crash_rate: float = 0.0
    recovery_rate: float = 0.5
    crashed_agents: tuple[int, ...] = ()
    straggler_fraction: float = 0.0
    straggler_skip_prob: float = 0.5
    max_retries: int = 2
    staleness_horizon: int = 2
    staleness_decay: float = 0.5
    quorum_fraction: float = 0.0
    #: Recovery mode (requires churn): an agent coming back online
    #: restores its last durable snapshot instead of retaining whatever
    #: happened to be in memory — the realistic crash model, where a
    #: reboot loses RAM.  Restores are counted in
    #: ``TransportStats.n_restores`` and telemetry.
    recover_from_snapshot: bool = False
    #: Replayable burst-fault trace; ``None`` keeps the i.i.d. model.
    trace: TraceConfig | None = None
    #: Self-healing overlay: monitor per-link loss and reroute around
    #: persistently lossy links (see the class docstring).
    selfheal: bool = False
    selfheal_threshold: float = 0.35
    selfheal_restore: float = 0.1
    selfheal_alpha: float = 0.4
    selfheal_min_rounds: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "corrupt_rate", "delay_rate", "crash_rate",
                     "recovery_rate", "straggler_fraction", "straggler_skip_prob",
                     "quorum_fraction"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.drop_rate >= 1.0:
            raise ValueError("drop_rate must be < 1 (retransmission must be able to succeed)")
        if self.max_delay_rounds < 1:
            raise ValueError("max_delay_rounds must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.staleness_horizon < 0:
            raise ValueError("staleness_horizon must be >= 0")
        if not 0.0 < self.staleness_decay <= 1.0:
            raise ValueError("staleness_decay must be in (0, 1]")
        if any(a < 0 for a in self.crashed_agents):
            raise ValueError("crashed_agents must be non-negative ids")
        if not 0.0 < self.selfheal_threshold <= 1.0:
            raise ValueError("selfheal_threshold must be in (0, 1]")
        if not 0.0 <= self.selfheal_restore < self.selfheal_threshold:
            raise ValueError("need 0 <= selfheal_restore < selfheal_threshold")
        if not 0.0 < self.selfheal_alpha <= 1.0:
            raise ValueError("selfheal_alpha must be in (0, 1]")
        if self.selfheal_min_rounds < 1:
            raise ValueError("selfheal_min_rounds must be >= 1")

    @property
    def active(self) -> bool:
        """True when any fault mechanism can change behaviour.

        With ``active == False`` the trainers use the plain
        :class:`~repro.federated.transport.MessageBus` — the zero-fault
        path is the original, bit-identical implementation.
        """
        return bool(
            self.drop_rate > 0
            or self.corrupt_rate > 0
            or self.delay_rate > 0
            or self.crash_rate > 0
            or self.crashed_agents
            or self.straggler_fraction > 0
            or self.quorum_fraction > 0
            or self.trace is not None
            or self.selfheal
        )


@dataclass(frozen=True)
class ScenarioConfig:
    """Grid-aware scenario pack: schedulable loads, DERs, DR events.

    Entirely opt-in: ``PFDRLConfig.scenario`` defaults to ``None`` and
    every training, serving and checkpoint path is bit-identical to the
    pre-scenario implementation in that case.  When set, it drives
    :class:`repro.scenario.ScenarioRunner` (deferrable-load scheduling
    agents, solar + battery netting, demand-response event pricing) and
    the per-run scenario summary :class:`repro.core.system.PFDRLSystem`
    attaches to its result.

    - ``pricing`` selects the tariff regime of the run: ``"tou"``
      (:class:`repro.data.pricing.VariableRatePlan`), ``"realtime"``
      (:class:`repro.data.pricing.RealTimeRatePlan`) or ``"dr"``
      (TOU base + seeded incentive events through
      :class:`repro.data.pricing.DemandResponsePlan`).
    - ``schedulable_devices`` name catalog entries with
      ``schedulable=True`` specs; each (residence, device) gets its own
      4-action deadline-scheduling DQN agent.
    - Solar/battery fields parameterise the per-residence DER tier that
      nets against the controlled load before pricing; ``solar_peak_kw=0``
      and ``battery_kwh=0`` disable the respective component.
    - DR fields parameterise the seeded grid-event generator
      (:func:`repro.scenario.dr.generate_dr_events`).
    """

    pricing: str = "tou"  # tou | realtime | dr
    schedulable_devices: tuple[str, ...] = ("dishwasher", "washer", "ev_charger")
    #: EMS training episodes per task window.
    episodes_per_task: int = 2
    #: Penalty added to the reward when the deadline forces a run.
    deadline_penalty: float = 1.0
    # -- DER tier ------------------------------------------------------
    solar_peak_kw: float = 3.0
    battery_kwh: float = 6.0
    battery_max_kw: float = 2.5
    #: Round-trip efficiency (split evenly between charge and discharge).
    battery_efficiency: float = 0.9
    # -- demand-response events ---------------------------------------
    dr_event_rate: float = 0.3
    dr_incentive_per_kwh: float = 0.25
    dr_duration_hours: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.pricing not in ("tou", "realtime", "dr"):
            raise ValueError("pricing must be one of tou|realtime|dr")
        if len(self.schedulable_devices) == 0:
            raise ValueError("need at least one schedulable device")
        if self.episodes_per_task < 1:
            raise ValueError("episodes_per_task must be >= 1")
        if self.deadline_penalty < 0:
            raise ValueError("deadline_penalty must be >= 0")
        for name in ("solar_peak_kw", "battery_kwh", "battery_max_kw",
                     "dr_incentive_per_kwh", "dr_duration_hours"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not 0.0 < self.battery_efficiency <= 1.0:
            raise ValueError("battery_efficiency must be in (0, 1]")
        if not 0.0 <= self.dr_event_rate <= 1.0:
            raise ValueError("dr_event_rate must be in [0, 1]")


@dataclass(frozen=True)
class PFDRLConfig:
    """Top-level configuration bundling all subsystems."""

    data: DataConfig = field(default_factory=DataConfig)
    forecast: ForecastConfig = field(default_factory=ForecastConfig)
    dqn: DQNConfig = field(default_factory=DQNConfig)
    federation: FederationConfig = field(default_factory=FederationConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: DRL training episodes per device before evaluation.
    episodes: int = 3
    #: Run the EMS training loop through the batched minute-major engine
    #: (``repro.rl.batch``).  Bit-identical in device scope; aggregate-
    #: equivalent in residence scope, hence off by default.
    ems_batched: bool = False
    #: Process-parallel residence sharding for EMS training segments
    #: (> 1 enables it; exact in both agent scopes).
    ems_workers: int = 1
    #: Grid-aware scenario pack (schedulable loads, DERs, DR events).
    #: ``None`` keeps every path bit-identical to the classic pipeline.
    scenario: ScenarioConfig | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.ems_workers < 1:
            raise ValueError("ems_workers must be >= 1")

    def replace(self, **kwargs: Any) -> "PFDRLConfig":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class ExperimentConfig:
    """Metadata wrapper used by the experiment harness."""

    name: str
    pfdrl: PFDRLConfig = field(default_factory=PFDRLConfig)
    repeats: int = 1
    notes: str = ""

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")


def config_to_dict(cfg: Any) -> dict[str, Any]:
    """Recursively convert a (possibly nested) dataclass config to a dict."""
    if dataclasses.is_dataclass(cfg) and not isinstance(cfg, type):
        return {
            f.name: config_to_dict(getattr(cfg, f.name)) for f in dataclasses.fields(cfg)
        }
    if isinstance(cfg, tuple):
        return [config_to_dict(v) for v in cfg]  # type: ignore[return-value]
    if isinstance(cfg, Mapping):
        return {k: config_to_dict(v) for k, v in cfg.items()}
    return cfg
