"""Forecaster protocol shared by all four prediction models."""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Forecaster"]


class Forecaster(abc.ABC):
    """A trainable next-hour load predictor.

    Contract
    --------
    - ``fit(X, y)`` performs *incremental* training: calling it again
      continues from the current weights (this is what makes federated
      rounds meaningful).
    - ``predict(X)`` maps ``(n, window)`` features to ``(n, horizon)``
      predictions.
    - ``get_weights()`` / ``set_weights()`` expose the parameters that go
      on the wire in the DFL broadcast, in a stable order.
    - ``clone()`` builds a fresh untrained model with identical
      configuration (used to spin up per-device models across residences).

    Inputs are expected pre-normalised (see
    :func:`repro.forecast.features.normalize_power`).
    """

    #: Registry key, e.g. ``"lr"``; set by subclasses.
    name: str = "base"

    def __init__(self, window: int, horizon: int, n_extra: int = 0) -> None:
        if window < 1 or horizon < 1:
            raise ValueError("window and horizon must be >= 1")
        if n_extra < 0:
            raise ValueError("n_extra must be >= 0")
        self.window = int(window)
        self.horizon = int(horizon)
        self.n_extra = int(n_extra)

    @property
    def input_dim(self) -> int:
        """Feature-vector width: ``window`` lag columns + ``n_extra``."""
        return self.window + self.n_extra

    # -- shape checking ----------------------------------------------
    def _check_X(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if X.ndim != 2 or X.shape[1] != self.input_dim:
            raise ValueError(f"expected X of shape (n, {self.input_dim}), got {X.shape}")
        return X

    def _check_Xy(self, X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        X = self._check_X(X)
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = y[None, :]
        if y.shape != (X.shape[0], self.horizon):
            raise ValueError(
                f"expected y of shape ({X.shape[0]}, {self.horizon}), got {y.shape}"
            )
        return X, y

    # -- API ------------------------------------------------------------
    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> float:
        """Train incrementally on (X, y); return the final training loss."""

    @abc.abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict ``(n, horizon)`` outputs for ``(n, window)`` inputs."""

    @abc.abstractmethod
    def get_weights(self) -> list[np.ndarray]:
        """Parameter arrays in stable order (copies)."""

    @abc.abstractmethod
    def set_weights(self, weights: list[np.ndarray]) -> None:
        """Load parameters produced by :meth:`get_weights`."""

    @abc.abstractmethod
    def clone(self) -> "Forecaster":
        """Fresh untrained model with the same configuration."""

    # -- persistence -----------------------------------------------------
    def state_dict(self) -> dict:
        """Complete mutable state as a state tree (see ``repro.persist``).

        The base implementation covers the wire weights only; models
        with additional training state (optimizer slots, sufficient
        statistics, RNGs) override this so that restore-and-continue is
        bit-identical to never having stopped.
        """
        return {"weights": self.get_weights()}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict` in place."""
        self.set_weights([np.asarray(w, dtype=np.float64) for w in state["weights"]])

    # -- conveniences ----------------------------------------------------
    def n_parameters(self) -> int:
        return sum(int(w.size) for w in self.get_weights())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(window={self.window}, horizon={self.horizon})"
