"""Kernel SVR via Random Fourier Features.

The paper's SVM reference (Cao 2003, "Support vector machines experts
for time series forecasting") uses kernel SVR.  A dual/SMO solver would
make the model non-federable (support vectors ARE training data — the
exact leak the paper wants to avoid); Random Fourier Features (Rahimi &
Recht 2007) approximate the RBF kernel with an explicit randomized
feature map, after which the model is *linear in feature space*: plain
weight arrays that FedAvg can average, with the feature map shared by
construction (same seed everywhere, like the rest of the DFL setup).

Registered as ``"svm_rbf"`` — an optional upgrade over the linear
``"svm"`` used in the headline comparison.
"""

from __future__ import annotations

import numpy as np

from repro.forecast.base import Forecaster
from repro.forecast.svr import SVRForecaster
from repro.rng import as_generator

__all__ = ["RFFSVRForecaster"]


class RFFSVRForecaster(Forecaster):
    """ε-insensitive regression on an RBF random-feature map.

    Parameters
    ----------
    n_features:
        Number of random Fourier features (the kernel-approximation
        fidelity knob).
    gamma:
        RBF bandwidth: ``k(x, x') = exp(-gamma * ||x - x'||^2)``.
        ``None`` uses the 1/input_dim heuristic.
    feature_seed:
        Seed of the random feature map.  **Must match across federated
        clients** (it plays the role of the shared architecture); it is
        deliberately separate from the optimisation seed.
    """

    name = "svm_rbf"

    def __init__(
        self,
        window: int,
        horizon: int,
        n_features: int = 128,
        gamma: float | None = None,
        epsilon: float = 0.02,
        C: float = 3.0,
        learning_rate: float = 0.2,
        epochs: int = 60,
        batch_size: int = 64,
        n_extra: int = 0,
        feature_seed: int = 1234,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__(window, horizon, n_extra)
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        self.n_features = int(n_features)
        self.gamma = float(gamma) if gamma is not None else 1.0 / self.input_dim
        if self.gamma <= 0:
            raise ValueError("gamma must be > 0")
        self.feature_seed = int(feature_seed)
        self._seed = seed

        fmap_rng = np.random.default_rng(self.feature_seed)
        # z(x) = sqrt(2/D) cos(Omega x + b),  Omega ~ N(0, 2*gamma*I)
        self._omega = fmap_rng.normal(
            0.0, np.sqrt(2.0 * self.gamma), size=(self.input_dim, self.n_features)
        )
        self._phase = fmap_rng.uniform(0.0, 2.0 * np.pi, size=self.n_features)

        # The linear ε-SVR head operates purely in feature space.  Reuse
        # the linear solver with window = n_features (no extras there).
        self._head = SVRForecaster(
            self.n_features,
            horizon,
            epsilon=epsilon,
            C=C,
            learning_rate=learning_rate,
            epochs=epochs,
            batch_size=batch_size,
            n_extra=0,
            seed=seed,
        )

    # ------------------------------------------------------------------
    def transform(self, X: np.ndarray) -> np.ndarray:
        """The random feature map: ``(n, input_dim) -> (n, n_features)``."""
        X = self._check_X(X)
        return np.sqrt(2.0 / self.n_features) * np.cos(X @ self._omega + self._phase)

    def fit(self, X: np.ndarray, y: np.ndarray) -> float:
        X, y = self._check_Xy(X, y)
        if X.shape[0] == 0:
            return float("nan")
        return self._head.fit(self.transform(X), y)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._head.predict(self.transform(X))

    # ------------------------------------------------------------------
    def get_weights(self) -> list[np.ndarray]:
        return self._head.get_weights()

    def set_weights(self, weights: list[np.ndarray]) -> None:
        self._head.set_weights(weights)

    def state_dict(self) -> dict:
        """Complete mutable state as a checkpointable tree."""
        # The feature map is deterministic from feature_seed (config, not
        # state); only the linear head carries mutable state.
        return {"head": self._head.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        self._head.load_state_dict(state["head"])

    def clone(self) -> "RFFSVRForecaster":
        return RFFSVRForecaster(
            self.window,
            self.horizon,
            n_features=self.n_features,
            gamma=self.gamma,
            epsilon=self._head.epsilon,
            C=self._head.C,
            learning_rate=self._head.learning_rate,
            epochs=self._head.epochs,
            batch_size=self._head.batch_size,
            n_extra=self.n_extra,
            feature_seed=self.feature_seed,
            seed=self._seed,
        )

    def kernel_approximation(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """``z(X) z(Y)ᵀ`` — converges to the RBF kernel as D grows."""
        return self.transform(X) @ self.transform(Y).T
