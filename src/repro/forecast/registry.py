"""Forecaster registry: name -> factory.

The paper's comparison set (Fig. 5): ``lr`` < ``svm`` < ``bp`` < ``lstm``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.forecast.base import Forecaster
from repro.forecast.bpnet import BPForecaster
from repro.forecast.linreg import LinearRegressionForecaster
from repro.forecast.lstm_forecaster import LSTMForecaster
from repro.forecast.rff_svr import RFFSVRForecaster
from repro.forecast.svr import SVRForecaster

__all__ = ["FORECASTERS", "make_forecaster", "register_forecaster"]

FORECASTERS: dict[str, Callable[..., Forecaster]] = {
    "lr": LinearRegressionForecaster,
    "svm": SVRForecaster,
    "svm_rbf": RFFSVRForecaster,
    "bp": BPForecaster,
    "lstm": LSTMForecaster,
}


def register_forecaster(name: str, factory: Callable[..., Forecaster]) -> None:
    """Add a custom forecaster; raises on duplicate names."""
    if name in FORECASTERS:
        raise ValueError(f"forecaster {name!r} already registered")
    FORECASTERS[name] = factory


def make_forecaster(name: str, window: int, horizon: int, **kwargs: Any) -> Forecaster:
    """Instantiate a registered forecaster by name.

    Extra keyword arguments (``n_extra``, ``seed``, model hyperparameters)
    are forwarded to the factory.

    >>> f = make_forecaster("lstm", window=60, horizon=60, seed=0)
    >>> f.name
    'lstm'
    """
    try:
        factory = FORECASTERS[name]
    except KeyError:
        known = ", ".join(sorted(FORECASTERS))
        raise KeyError(f"unknown forecaster {name!r}; known: {known}") from None
    return factory(window, horizon, **kwargs)
