"""Lag-window feature construction for load forecasting.

The forecasting task (§3.2.1): from the last ``window`` minutes of a
device's power, predict the next ``horizon`` minutes.  Windows are built
with a stride (default = horizon, i.e. non-overlapping targets) and the
power is normalised by the device's nominal *on* power so feature scales
match across residences — a prerequisite for meaningful federated
parameter averaging.

All window extraction is implemented with
:func:`numpy.lib.stride_tricks.sliding_window_view` (zero-copy views),
per the HPC guides.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "make_windows",
    "normalize_power",
    "denormalize_power",
    "window_count",
    "augment_time_features",
    "N_TIME_FEATURES",
]

#: Default number of harmonic pairs appended by :func:`augment_time_features`.
DEFAULT_HARMONICS = 4


def n_time_features(harmonics: int = DEFAULT_HARMONICS) -> int:
    """Extra columns produced by :func:`augment_time_features`."""
    if harmonics < 1:
        raise ValueError("harmonics must be >= 1")
    return 2 * harmonics


#: Backwards-compatible column count for the default single harmonic pair.
N_TIME_FEATURES = 2


def normalize_power(power_kw: np.ndarray, on_kw: float) -> np.ndarray:
    """Scale power to ~[0, 1.1] by the device's nominal on power."""
    if on_kw <= 0:
        raise ValueError("on_kw must be > 0")
    return np.asarray(power_kw, dtype=np.float64) / on_kw


def denormalize_power(norm: np.ndarray, on_kw: float) -> np.ndarray:
    """Inverse of :func:`normalize_power`."""
    if on_kw <= 0:
        raise ValueError("on_kw must be > 0")
    return np.asarray(norm, dtype=np.float64) * on_kw


def window_count(n_samples: int, window: int, horizon: int, stride: int) -> int:
    """Number of (X, y) pairs :func:`make_windows` will produce."""
    usable = n_samples - window - horizon
    if usable < 0:
        return 0
    return usable // stride + 1


def make_windows(
    series: np.ndarray,
    window: int,
    horizon: int,
    stride: int | None = None,
    return_offsets: bool = False,
) -> tuple[np.ndarray, np.ndarray] | tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build supervised pairs from a 1-D series.

    Parameters
    ----------
    series:
        1-D (already normalised) power series.
    window, horizon:
        History length and prediction length, in samples.
    stride:
        Spacing between consecutive training pairs; defaults to ``horizon``
        (non-overlapping targets, matching the paper's hourly cadence).
    return_offsets:
        Also return the index of each target's first sample — needed to
        align predictions with calendar time (hour-of-day experiments).

    Returns
    -------
    X : ``(n, window)``, y : ``(n, horizon)`` float64 arrays (copies), and
    optionally ``offsets`` of shape ``(n,)``.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError("series must be 1-D")
    if stride is None:
        stride = horizon
    if stride < 1:
        raise ValueError("stride must be >= 1")
    n = window_count(series.shape[0], window, horizon, stride)
    if n <= 0:
        empty = np.zeros((0, window)), np.zeros((0, horizon))
        return (*empty, np.zeros(0, dtype=np.int64)) if return_offsets else empty

    view = sliding_window_view(series, window + horizon)[::stride][:n]
    X = view[:, :window].copy()
    y = view[:, window:].copy()
    if return_offsets:
        offsets = (np.arange(n) * stride + window).astype(np.int64)
        return X, y, offsets
    return X, y


def augment_time_features(
    X: np.ndarray,
    offsets: np.ndarray,
    minutes_per_day: int,
    t0: int = 0,
    harmonics: int = 1,
) -> np.ndarray:
    """Append sin/cos harmonics of the target's minute-of-day phase.

    Load is strongly diurnal; the forecast target's position in the day is
    known at prediction time, so giving the model its phase is standard
    practice (and available to every model equally, keeping the Fig. 5
    comparison fair).

    Parameters
    ----------
    X:
        ``(n, window)`` lag windows from :func:`make_windows`.
    offsets:
        Per-window target-start indices (``return_offsets=True``).
    minutes_per_day:
        Day length of the simulation.
    t0:
        Absolute minute index of ``series[0]`` (so test splits keep correct
        calendar phase).
    harmonics:
        Number of sin/cos pairs (frequencies 1..harmonics per day).  More
        harmonics let even linear models shape a sharper day profile.

    Returns
    -------
    ``(n, window + 2 * harmonics)`` array.
    """
    X = np.asarray(X, dtype=np.float64)
    offsets = np.asarray(offsets, dtype=np.int64)
    if X.ndim != 2 or offsets.shape != (X.shape[0],):
        raise ValueError("X must be (n, window) with aligned offsets")
    if minutes_per_day < 1:
        raise ValueError("minutes_per_day must be >= 1")
    if harmonics < 1:
        raise ValueError("harmonics must be >= 1")
    phase = 2.0 * np.pi * ((offsets + t0) % minutes_per_day) / minutes_per_day
    cols = [X]
    for k in range(1, harmonics + 1):
        cols.append(np.sin(k * phase)[:, None])
        cols.append(np.cos(k * phase)[:, None])
    return np.concatenate(cols, axis=1)
