"""Support-vector-regression forecaster.

Linear multi-output SVR with the *squared* ε-insensitive loss::

    L = C · mean_ij max(0, |w_j·x_i + b_j − y_ij| − ε)² + ½λ‖W‖²

trained by mini-batch gradient descent.  The squared hinge keeps the
gradient magnitude-aware (plain sign subgradients oscillate badly on
multi-output regression) while preserving the SVR character: errors
inside the ε-tube are ignored entirely, so fine structure below ε is
never fit — the mild underfit relative to the BP/LSTM models that the
paper reports ("performance with large datasets is lower than the
others").  The model stays federable: plain weight arrays that average.
"""

from __future__ import annotations

import numpy as np

from repro.forecast.base import Forecaster
from repro.rng import as_generator, generator_state, restore_generator

__all__ = ["SVRForecaster"]


class SVRForecaster(Forecaster):
    """Linear multi-output ε-insensitive SVR (see module docstring)."""

    name = "svm"

    def __init__(
        self,
        window: int,
        horizon: int,
        epsilon: float = 0.02,
        C: float = 3.0,
        reg: float = 1e-3,
        learning_rate: float = 0.2,
        epochs: int = 60,
        batch_size: int = 64,
        n_extra: int = 0,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__(window, horizon, n_extra)
        if epsilon < 0 or C <= 0 or learning_rate <= 0 or reg < 0:
            raise ValueError("need epsilon >= 0, C > 0, learning_rate > 0, reg >= 0")
        self.epsilon = float(epsilon)
        self.C = float(C)
        self.reg = float(reg)
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self._seed = seed
        self._rng = as_generator(seed)
        self.W = np.zeros((self.input_dim, horizon))
        self.b = np.zeros(horizon)

    # ------------------------------------------------------------------
    def _loss(self, X: np.ndarray, y: np.ndarray) -> float:
        resid = X @ self.W + self.b - y
        excess = np.maximum(0.0, np.abs(resid) - self.epsilon)
        return float(self.C * (excess**2).mean() + 0.5 * self.reg * (self.W**2).sum())

    def fit(self, X: np.ndarray, y: np.ndarray) -> float:
        X, y = self._check_Xy(X, y)
        n = X.shape[0]
        if n == 0:
            return float("nan")
        bs = min(self.batch_size, n)
        lr = self.learning_rate
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, bs):
                idx = order[start : start + bs]
                Xb, yb = X[idx], y[idx]
                resid = Xb @ self.W + self.b - yb
                excess = np.maximum(0.0, np.abs(resid) - self.epsilon)
                g = 2.0 * np.sign(resid) * excess  # d/dresid of excess²
                m = Xb.shape[0] * self.horizon
                grad_W = self.C * (Xb.T @ g) / m + self.reg * self.W
                grad_b = self.C * g.sum(axis=0) / m
                self.W -= lr * grad_W
                self.b -= lr * grad_b
        return self._loss(X, y)

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = self._check_X(X)
        return X @ self.W + self.b

    # ------------------------------------------------------------------
    def get_weights(self) -> list[np.ndarray]:
        return [self.W.copy(), self.b.copy()]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        w, b = weights
        w = np.asarray(w, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if w.shape != self.W.shape or b.shape != self.b.shape:
            raise ValueError("weight shape mismatch")
        self.W = w.copy()
        self.b = b.copy()

    def state_dict(self) -> dict:
        """Complete mutable state as a checkpointable tree."""
        return {
            "W": self.W.copy(),
            "b": self.b.copy(),
            "rng": generator_state(self._rng),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        self.set_weights([state["W"], state["b"]])
        restore_generator(self._rng, state["rng"])

    def clone(self) -> "SVRForecaster":
        return SVRForecaster(
            self.window,
            self.horizon,
            epsilon=self.epsilon,
            C=self.C,
            reg=self.reg,
            learning_rate=self.learning_rate,
            epochs=self.epochs,
            batch_size=self.batch_size,
            n_extra=self.n_extra,
            seed=self._seed,
        )
