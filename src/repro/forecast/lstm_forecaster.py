"""LSTM forecaster — the paper's best model (≈92% accuracy).

Input layout: the feature vector's first ``window`` columns are the lag
sequence; the remaining ``n_extra`` columns (target-time harmonics) are
*tiled across every timestep* as conditioning channels, so each LSTM
step sees ``1 + n_extra`` features.  The final hidden state feeds a
linear head producing the ``horizon``-length prediction; trained with
Adam on MSE.
"""

from __future__ import annotations

import numpy as np

from repro.forecast.base import Forecaster
from repro.nn import Adam, LSTMRegressor, MSELoss
from repro.nn.serialization import get_weights, set_weights
from repro.rng import as_generator, generator_state, restore_generator

__all__ = ["LSTMForecaster"]


class LSTMForecaster(Forecaster):
    """(Stacked) LSTM sequence encoder + linear head (the paper's best model)."""

    name = "lstm"

    def __init__(
        self,
        window: int,
        horizon: int,
        hidden_size: int = 32,
        learning_rate: float = 0.01,
        epochs: int = 10,
        batch_size: int = 32,
        n_layers: int = 1,
        n_extra: int = 0,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__(window, horizon, n_extra)
        self.hidden_size = int(hidden_size)
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.n_layers = int(n_layers)
        self._seed = seed
        self._rng = as_generator(seed)
        self.model = LSTMRegressor(
            1 + self.n_extra, hidden_size, horizon, n_layers=n_layers, rng=self._rng
        )
        self.optimizer = Adam(self.model.parameters(), lr=learning_rate, clip_norm=5.0)
        self.loss_fn = MSELoss()

    # ------------------------------------------------------------------
    def _to_sequence(self, X: np.ndarray) -> np.ndarray:
        """(n, window + n_extra) -> (n, window, 1 + n_extra)."""
        n = X.shape[0]
        lags = X[:, : self.window, None]
        if self.n_extra == 0:
            return lags
        extras = X[:, self.window :]  # (n, n_extra)
        tiled = np.broadcast_to(extras[:, None, :], (n, self.window, self.n_extra))
        return np.concatenate([lags, tiled], axis=2)

    def fit(self, X: np.ndarray, y: np.ndarray) -> float:
        X, y = self._check_Xy(X, y)
        n = X.shape[0]
        if n == 0:
            return float("nan")
        bs = min(self.batch_size, n)
        last = float("nan")
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, bs):
                idx = order[start : start + bs]
                self.model.zero_grad()
                pred = self.model.forward(self._to_sequence(X[idx]))
                last, grad = self.loss_fn(pred, y[idx])
                self.model.backward(grad)
                self.optimizer.step()
        return last

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = self._check_X(X)
        return self.model.forward(self._to_sequence(X))

    # ------------------------------------------------------------------
    def get_weights(self) -> list[np.ndarray]:
        return get_weights(self.model)

    def set_weights(self, weights: list[np.ndarray]) -> None:
        set_weights(self.model, weights)
        # Adam moments were estimated for the pre-merge parameters; reset
        # so the merged model starts from clean optimiser state.
        self.optimizer = Adam(self.model.parameters(), lr=self.learning_rate, clip_norm=5.0)

    def state_dict(self) -> dict:
        """Complete mutable state as a checkpointable tree."""
        return {
            "weights": get_weights(self.model),
            "optimizer": self.optimizer.state_dict(),
            "rng": generator_state(self._rng),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        # Bypass self.set_weights: that hook deliberately resets Adam
        # (federated-merge semantics), but a restore must bring the
        # moment estimates back exactly as they were.
        set_weights(self.model, [np.asarray(w) for w in state["weights"]])
        self.optimizer.load_state_dict(state["optimizer"])
        restore_generator(self._rng, state["rng"])

    def clone(self) -> "LSTMForecaster":
        return LSTMForecaster(
            self.window,
            self.horizon,
            hidden_size=self.hidden_size,
            learning_rate=self.learning_rate,
            epochs=self.epochs,
            batch_size=self.batch_size,
            n_layers=self.n_layers,
            n_extra=self.n_extra,
            seed=self._seed,
        )
