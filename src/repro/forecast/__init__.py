"""Per-device load forecasters (paper §3.2, Figs. 5-8, 13).

Four models behind one :class:`repro.forecast.base.Forecaster` API —
Linear Regression, (linear) Support Vector Regression, a Back-Propagation
network, and an LSTM — all exposing ``get_weights`` / ``set_weights`` so
the decentralized-federated-learning driver can broadcast and average
them (Algorithm 1).

The task: given the last ``window`` minutes of a device's (normalised)
power, predict the next ``horizon`` minutes (paper: next hour at minute
granularity, horizon = 60).
"""

from repro.forecast.base import Forecaster
from repro.forecast.features import (
    N_TIME_FEATURES,
    augment_time_features,
    denormalize_power,
    make_windows,
    normalize_power,
)
from repro.forecast.linreg import LinearRegressionForecaster
from repro.forecast.rff_svr import RFFSVRForecaster
from repro.forecast.svr import SVRForecaster
from repro.forecast.bpnet import BPForecaster
from repro.forecast.lstm_forecaster import LSTMForecaster
from repro.forecast.registry import FORECASTERS, make_forecaster

__all__ = [
    "Forecaster",
    "make_windows",
    "normalize_power",
    "denormalize_power",
    "augment_time_features",
    "N_TIME_FEATURES",
    "LinearRegressionForecaster",
    "SVRForecaster",
    "RFFSVRForecaster",
    "BPForecaster",
    "LSTMForecaster",
    "FORECASTERS",
    "make_forecaster",
]
