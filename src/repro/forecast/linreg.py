"""Linear-regression forecaster.

Ridge-regularised multi-output linear model with *accumulating
sufficient statistics*: every ``fit`` call adds its windows to the
running Gram matrices (``A'A`` and ``A'y``), so training is genuinely
incremental — tiny stream segments all contribute, and accuracy grows
with cumulative data (the Fig. 7 behaviour).  Each ``fit`` solves the
ridge system on the accumulated statistics and *blends* the solution
with the current weights, which is what keeps federated averaging
meaningful (the current weights carry the neighbourhood's information;
the solve carries the local data's).

The paper characterises LR as the under-fitting baseline; the ridge
default is calibrated so the Fig. 5 ordering LR < SVM < BP < LSTM holds
on the synthetic workload.
"""

from __future__ import annotations

import numpy as np

from repro.forecast.base import Forecaster

__all__ = ["LinearRegressionForecaster"]


class LinearRegressionForecaster(Forecaster):
    """``y = [X, 1] @ W`` with ridge penalty on accumulated statistics.

    Parameters
    ----------
    ridge:
        L2 penalty on the weights (not the intercept row).
    blend:
        Weight of the fresh ridge solution when mixing with the current
        (possibly federated) weights: ``W <- (1-blend)*W + blend*W_solve``.
        The first fit uses 1.0 (cold start).
    """

    name = "lr"

    def __init__(
        self,
        window: int,
        horizon: int,
        ridge: float = 100.0,
        blend: float = 0.5,
        n_extra: int = 0,
    ) -> None:
        super().__init__(window, horizon, n_extra)
        if ridge < 0:
            raise ValueError("ridge must be >= 0")
        if not 0.0 < blend <= 1.0:
            raise ValueError("blend must be in (0, 1]")
        self.ridge = float(ridge)
        self.blend = float(blend)
        d = self.input_dim + 1  # +1 for the intercept column
        self.W = np.zeros((d, horizon))
        self._gram = np.zeros((d, d))
        self._moment = np.zeros((d, horizon))
        self._n_samples = 0
        self._fitted = False

    # ------------------------------------------------------------------
    def _design(self, X: np.ndarray) -> np.ndarray:
        return np.concatenate([X, np.ones((X.shape[0], 1))], axis=1)

    def fit(self, X: np.ndarray, y: np.ndarray) -> float:
        X, y = self._check_Xy(X, y)
        if X.shape[0] == 0:
            return float("nan")
        A = self._design(X)
        self._gram += A.T @ A
        self._moment += A.T @ y
        self._n_samples += X.shape[0]

        reg = self.ridge * np.eye(A.shape[1])
        reg[-1, -1] = 0.0  # don't penalise the intercept
        W_solve = np.linalg.solve(self._gram + reg, self._moment)
        blend = 1.0 if not self._fitted else self.blend
        self.W = (1.0 - blend) * self.W + blend * W_solve
        self._fitted = True
        resid = A @ self.W - y
        return float((resid**2).mean())

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = self._check_X(X)
        return self._design(X) @ self.W

    # ------------------------------------------------------------------
    @property
    def n_samples_seen(self) -> int:
        return self._n_samples

    def get_weights(self) -> list[np.ndarray]:
        return [self.W.copy()]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        (w,) = weights
        w = np.asarray(w, dtype=np.float64)
        if w.shape != self.W.shape:
            raise ValueError(f"expected shape {self.W.shape}, got {w.shape}")
        self.W = w.copy()
        self._fitted = True

    def state_dict(self) -> dict:
        """Complete mutable state as a checkpointable tree."""
        return {
            "W": self.W.copy(),
            "gram": self._gram.copy(),
            "moment": self._moment.copy(),
            "n_samples": self._n_samples,
            "fitted": self._fitted,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        self.W = np.asarray(state["W"], dtype=np.float64).copy()
        self._gram = np.asarray(state["gram"], dtype=np.float64).copy()
        self._moment = np.asarray(state["moment"], dtype=np.float64).copy()
        self._n_samples = int(state["n_samples"])
        self._fitted = bool(state["fitted"])

    def clone(self) -> "LinearRegressionForecaster":
        return LinearRegressionForecaster(
            self.window,
            self.horizon,
            ridge=self.ridge,
            blend=self.blend,
            n_extra=self.n_extra,
        )
