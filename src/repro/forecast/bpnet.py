"""Back-propagation network forecaster.

A one-hidden-layer ReLU MLP trained with mini-batch SGD — the classic
"BP network" baseline the paper compares (its noted weakness, converging
to local minima, is inherent to small SGD-trained MLPs).
"""

from __future__ import annotations

import numpy as np

from repro.forecast.base import Forecaster
from repro.nn import MLP, MSELoss, SGD
from repro.nn.serialization import get_weights, set_weights
from repro.rng import as_generator, generator_state, restore_generator

__all__ = ["BPForecaster"]


class BPForecaster(Forecaster):
    """One-hidden-layer ReLU MLP trained with momentum SGD (the paper's BP net)."""

    name = "bp"

    def __init__(
        self,
        window: int,
        horizon: int,
        hidden_size: int = 64,
        learning_rate: float = 0.05,
        epochs: int = 20,
        batch_size: int = 32,
        momentum: float = 0.9,
        n_extra: int = 0,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__(window, horizon, n_extra)
        self.hidden_size = int(hidden_size)
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.momentum = float(momentum)
        self._seed = seed
        self._rng = as_generator(seed)
        self.model = MLP(
            self.input_dim, [hidden_size], horizon, activation="relu", rng=self._rng
        )
        self.optimizer = SGD(
            self.model.parameters(), lr=learning_rate, momentum=momentum, clip_norm=5.0
        )
        self.loss_fn = MSELoss()

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> float:
        X, y = self._check_Xy(X, y)
        n = X.shape[0]
        if n == 0:
            return float("nan")
        bs = min(self.batch_size, n)
        last = float("nan")
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, bs):
                idx = order[start : start + bs]
                self.model.zero_grad()
                pred = self.model.forward(X[idx])
                last, grad = self.loss_fn(pred, y[idx])
                self.model.backward(grad)
                self.optimizer.step()
        return last

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = self._check_X(X)
        return self.model.forward(X)

    # ------------------------------------------------------------------
    def get_weights(self) -> list[np.ndarray]:
        return get_weights(self.model)

    def set_weights(self, weights: list[np.ndarray]) -> None:
        set_weights(self.model, weights)
        # The old momentum was accumulated toward the pre-merge model;
        # carrying it across a federated swap drags the merged weights
        # back toward the stale local optimum.
        self.optimizer = SGD(
            self.model.parameters(),
            lr=self.learning_rate,
            momentum=self.momentum,
            clip_norm=5.0,
        )

    def state_dict(self) -> dict:
        """Complete mutable state as a checkpointable tree."""
        return {
            "weights": get_weights(self.model),
            "optimizer": self.optimizer.state_dict(),
            "rng": generator_state(self._rng),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        # Bypass self.set_weights: that hook deliberately resets the
        # optimizer (federated-merge semantics), but a restore must bring
        # the momentum buffers back exactly as they were.
        set_weights(self.model, [np.asarray(w) for w in state["weights"]])
        self.optimizer.load_state_dict(state["optimizer"])
        restore_generator(self._rng, state["rng"])

    def clone(self) -> "BPForecaster":
        return BPForecaster(
            self.window,
            self.horizon,
            hidden_size=self.hidden_size,
            learning_rate=self.learning_rate,
            epochs=self.epochs,
            batch_size=self.batch_size,
            momentum=self.momentum,
            n_extra=self.n_extra,
            seed=self._seed,
        )
