"""Configuration digests guarding checkpoint resume.

Every resumable driver stamps its checkpoints with a SHA-256 over a
JSON view of its configuration and refuses to restore state written
under a different one — mixing incompatible run state would diverge
silently instead of failing loudly.  The helper lives here (rather than
with any one driver) so the system pipeline, the serving snapshot
loader and the hierarchical scale runner all guard with the same
canonical encoding.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["json_digest"]


def json_digest(obj: Any) -> str:
    """SHA-256 hex digest of *obj*'s canonical (sorted-key) JSON form.

    *obj* must be JSON-serialisable — pass configs through
    :func:`repro.config.config_to_dict` first.
    """
    blob = json.dumps(obj, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
