"""State-tree codec: nested run state ⇄ flat array + value maps.

Checkpointable components expose ``state_dict()`` returning a *state
tree*: arbitrarily nested ``dict``/``list`` containers whose leaves are
either numpy arrays or JSON scalars (``int``/``float``/``str``/``bool``/
``None``).  The on-disk checkpoint format (see
:mod:`repro.persist.checkpoint`) stores arrays in one NPZ file and
everything else in a JSON manifest, so this module provides the codec
between the two shapes:

- :func:`flatten_state` walks the tree and splits it into
  ``(arrays, values)`` — two flat ``{path: leaf}`` maps keyed by
  ``/``-joined paths;
- :func:`unflatten_state` rebuilds the original tree from those maps.

Path encoding
-------------
Dict keys are percent-escaped (``%`` → ``%25``, ``/`` → ``%2F``) so keys
containing the separator round-trip.  Lists are recorded with a
``__list_len__`` marker value at the list's own path plus index-keyed
children, which preserves both order and length (including empty lists).
A subtree containing *no* array anywhere is stored whole as a single
JSON value at its path — this keeps e.g. an RNG bit-generator state dict
as one legible manifest entry instead of dozens of scalar rows.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

__all__ = ["flatten_state", "unflatten_state", "StateError"]

_LIST_LEN = "__list_len__"
_SCALARS = (str, bool, int, float, type(None))


class StateError(ValueError):
    """A state tree violates the codec's leaf/container contract."""


def _escape(key: str) -> str:
    return key.replace("%", "%25").replace("/", "%2F")


def _unescape(key: str) -> str:
    return key.replace("%2F", "/").replace("%25", "%")


def _check_key(key: Any) -> str:
    if not isinstance(key, str):
        raise StateError(f"state dict keys must be str, got {key!r}")
    if key == _LIST_LEN:
        raise StateError(f"state dict key {_LIST_LEN!r} is reserved")
    return _escape(key)


def _coerce_scalar(value: Any) -> Any:
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


def _contains_array(node: Any) -> bool:
    if isinstance(node, np.ndarray):
        return True
    if isinstance(node, Mapping):
        return any(_contains_array(v) for v in node.values())
    if isinstance(node, (list, tuple)):
        return any(_contains_array(v) for v in node)
    return False


def _check_json_tree(node: Any, path: str) -> Any:
    """Validate (and numpy-coerce) an array-free subtree for the manifest."""
    node = _coerce_scalar(node)
    if isinstance(node, _SCALARS):
        return node
    if isinstance(node, Mapping):
        out = {}
        for key, value in node.items():
            if not isinstance(key, str):
                raise StateError(f"non-str dict key {key!r} at {path!r}")
            out[key] = _check_json_tree(value, f"{path}/{key}")
        return out
    if isinstance(node, (list, tuple)):
        return [_check_json_tree(v, f"{path}[{i}]") for i, v in enumerate(node)]
    raise StateError(f"unsupported leaf type {type(node).__name__} at {path!r}")


def _check_array(arr: np.ndarray, path: str) -> np.ndarray:
    if arr.dtype == object or arr.dtype.kind in "USV":
        raise StateError(
            f"array at {path!r} has non-numeric dtype {arr.dtype} "
            "(store strings as JSON values, not arrays)"
        )
    return np.ascontiguousarray(arr)


def flatten_state(tree: Any) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Split a state tree into flat ``(arrays, values)`` path maps."""
    arrays: dict[str, np.ndarray] = {}
    values: dict[str, Any] = {}

    def walk(node: Any, path: str) -> None:
        if isinstance(node, np.ndarray):
            arrays[path] = _check_array(node, path)
            return
        if isinstance(node, Mapping):
            if not _contains_array(node):
                values[path] = _check_json_tree(node, path)
                return
            for key, value in node.items():
                walk(value, f"{path}/{_check_key(key)}" if path else _check_key(key))
            return
        if isinstance(node, (list, tuple)):
            if not _contains_array(node):
                values[path] = _check_json_tree(node, path)
                return
            values[f"{path}/{_LIST_LEN}"] = len(node)
            for i, value in enumerate(node):
                walk(value, f"{path}/{i}")
            return
        values[path] = _check_json_tree(node, path)

    if not isinstance(tree, Mapping):
        raise StateError(f"state tree root must be a dict, got {type(tree).__name__}")
    for key, value in tree.items():
        walk(value, _check_key(key))
    return arrays, values


def unflatten_state(
    arrays: Mapping[str, np.ndarray], values: Mapping[str, Any]
) -> dict[str, Any]:
    """Rebuild the nested state tree from flat ``(arrays, values)`` maps."""
    root: dict[str, Any] = {}
    list_paths: list[tuple[str, int]] = []

    def insert(path: str, leaf: Any) -> None:
        parts = path.split("/")
        if parts[-1] == _LIST_LEN:
            list_paths.append(("/".join(parts[:-1]), int(leaf)))
            return
        node = root
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            if not isinstance(node, dict):
                raise StateError(f"path conflict at {path!r}")
        node[parts[-1]] = leaf

    for path, leaf in values.items():
        insert(path, leaf)
    for path, arr in arrays.items():
        insert(path, np.asarray(arr))

    def fix(node: Any, path: str) -> Any:
        if not isinstance(node, dict):
            return node
        length = lengths.get(path)
        fixed = {k: fix(v, f"{path}/{k}" if path else k) for k, v in node.items()}
        if length is None:
            return {_unescape(k): v for k, v in fixed.items()}
        out = []
        for i in range(length):
            key = str(i)
            if key not in fixed:
                raise StateError(f"list at {path!r} is missing index {i}")
            out.append(fixed[key])
        return out

    lengths = dict(list_paths)
    # A zero-element list leaves no child entries behind; materialise an
    # empty container node so ``fix`` can turn it back into [].
    for path, length in lengths.items():
        if length == 0:
            node = root
            for part in path.split("/"):
                node = node.setdefault(part, {})
    return dict(fix(root, ""))
