"""Atomic, versioned, checksummed checkpoints on disk.

One checkpoint is one *directory* holding exactly two files:

``manifest.json``
    ``format_version``, library version, caller-supplied ``meta``
    (free-form JSON — step number, config digest, ...), the flat
    ``values`` map from :func:`repro.persist.state.flatten_state`, and
    an ``arrays`` index: per-array ``shape``/``dtype``/``sha256``.

``arrays.npz``
    Every ndarray leaf, compressed, keyed by its state-tree path.

Atomicity: both files are written into a ``.tmp-…`` sibling directory
which is then renamed over the target with :func:`os.replace` semantics
(an existing checkpoint at the target is moved aside first and removed
after the rename succeeds).  Readers therefore never observe a
half-written checkpoint — the directory either has the old complete
contents or the new complete contents.

Integrity: :func:`load_checkpoint` recomputes each array's SHA-256 and
compares it to the manifest (``verify=False`` skips this for speed);
any mismatch, missing member, or version skew raises
:class:`CheckpointError`.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import uuid
from typing import Any, Mapping

import numpy as np

from repro.persist.state import flatten_state, unflatten_state

__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "ARRAYS_NAME",
    "CheckpointError",
    "TrainingInterrupted",
    "save_checkpoint",
    "load_checkpoint",
    "read_manifest",
]

FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"


class CheckpointError(RuntimeError):
    """A checkpoint is missing, corrupt, or incompatible."""


class TrainingInterrupted(RuntimeError):
    """Raised by the training loop when a scheduled stop point is hit.

    Carries the step of the checkpoint written at the stop, so callers
    (CLI, tests) know where a later ``--resume`` will pick up.
    """

    def __init__(self, step: int) -> None:
        super().__init__(f"training interrupted after checkpoint step {step}")
        self.step = step


def _sha256(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()


def save_checkpoint(
    path: str,
    state: Mapping[str, Any],
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Write *state* (a state tree) atomically to directory *path*.

    Returns the manifest dict that was written.
    """
    arrays, values = flatten_state(state)
    manifest = {
        "format_version": FORMAT_VERSION,
        "library": "repro",
        "meta": dict(meta or {}),
        "values": values,
        "arrays": {
            key: {
                "shape": list(arr.shape),
                "dtype": str(arr.dtype),
                "sha256": _sha256(arr),
            }
            for key, arr in arrays.items()
        },
    }

    path = os.path.abspath(path)
    parent = os.path.dirname(path)
    os.makedirs(parent, exist_ok=True)
    tmp = os.path.join(parent, f".tmp-{os.path.basename(path)}-{uuid.uuid4().hex[:8]}")
    os.makedirs(tmp)
    try:
        with open(os.path.join(tmp, MANIFEST_NAME), "w", encoding="utf-8") as fh:
            # allow_nan stays on: history rows may legitimately carry NaN
            # (e.g. reward fraction on an empty day) and must round-trip
            # as NaN, not null, for bit-identical resume.
            json.dump(manifest, fh, sort_keys=True, indent=2)
            fh.write("\n")
        np.savez_compressed(os.path.join(tmp, ARRAYS_NAME), **arrays)
        if os.path.isdir(path):
            # Directory renames cannot atomically replace a non-empty
            # target; move the old checkpoint aside first so a reader
            # racing us still sees one complete version or the other.
            aside = path + f".old-{uuid.uuid4().hex[:8]}"
            os.replace(path, aside)
            os.replace(tmp, path)
            shutil.rmtree(aside, ignore_errors=True)
        else:
            os.replace(tmp, path)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return manifest


def read_manifest(path: str) -> dict[str, Any]:
    """Load and version-check just the manifest of checkpoint *path*."""
    manifest_path = os.path.join(path, MANIFEST_NAME)
    if not os.path.isfile(manifest_path):
        raise CheckpointError(f"no checkpoint manifest at {manifest_path}")
    with open(manifest_path, "r", encoding="utf-8") as fh:
        try:
            manifest = json.load(fh)
        except ValueError as exc:
            raise CheckpointError(f"unreadable manifest at {manifest_path}: {exc}")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format version {version!r} unsupported "
            f"(this library reads version {FORMAT_VERSION})"
        )
    return manifest


def load_checkpoint(path: str, verify: bool = True) -> tuple[dict[str, Any], dict[str, Any]]:
    """Load checkpoint directory *path*; returns ``(state, manifest)``.

    With ``verify=True`` every array's SHA-256 must match the manifest.
    """
    manifest = read_manifest(path)
    arrays_path = os.path.join(path, ARRAYS_NAME)
    expected = manifest.get("arrays", {})
    arrays: dict[str, np.ndarray] = {}
    if expected:
        if not os.path.isfile(arrays_path):
            raise CheckpointError(f"checkpoint is missing {ARRAYS_NAME} at {path}")
        with np.load(arrays_path) as npz:
            members = set(npz.files)
            missing = sorted(set(expected) - members)
            if missing:
                raise CheckpointError(
                    f"checkpoint arrays missing members: {missing[:5]}"
                )
            for key in expected:
                arrays[key] = npz[key]
    if verify:
        for key, info in expected.items():
            digest = _sha256(arrays[key])
            if digest != info.get("sha256"):
                raise CheckpointError(
                    f"checksum mismatch for array {key!r} in {path} "
                    "(checkpoint is corrupt)"
                )
    state = unflatten_state(arrays, manifest.get("values", {}))
    return state, manifest
