"""Durable run state: checkpoint format, store, and state-tree codec.

``repro.persist`` is the persistence layer of the library.  Components
all over the stack (``nn`` optimizers, forecasters, replay buffers,
policies, DQN agents, buses, trainers, the system driver, telemetry)
expose ``state_dict()`` / ``load_state_dict()`` returning *state trees*
— nested dicts/lists of numpy arrays and JSON scalars.  This package
turns those trees into atomic, checksummed, versioned on-disk
checkpoints and back:

- :mod:`repro.persist.state` — the tree ⇄ flat-maps codec;
- :mod:`repro.persist.checkpoint` — one checkpoint = NPZ + manifest,
  written via temp-dir + rename, SHA-256 verified on load;
- :mod:`repro.persist.store` — a keep-last-K directory of checkpoints
  with step addressing and a JSON index.

The contract the rest of the library builds on: restoring a state tree
and continuing is *bit-identical* to never having stopped.
"""

from repro.persist.checkpoint import (
    ARRAYS_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    CheckpointError,
    TrainingInterrupted,
    load_checkpoint,
    read_manifest,
    save_checkpoint,
)
from repro.persist.digest import json_digest
from repro.persist.state import StateError, flatten_state, unflatten_state
from repro.persist.store import INDEX_NAME, CheckpointStore

__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "ARRAYS_NAME",
    "INDEX_NAME",
    "CheckpointError",
    "TrainingInterrupted",
    "StateError",
    "json_digest",
    "flatten_state",
    "unflatten_state",
    "save_checkpoint",
    "load_checkpoint",
    "read_manifest",
    "CheckpointStore",
]
