"""Directory of checkpoints with retention and a JSON index.

A :class:`CheckpointStore` owns one root directory and lays out
checkpoints as ``ckpt-00000042/`` subdirectories (zero-padded step
numbers, so lexicographic order equals step order).  Each ``save``
writes the checkpoint atomically (see
:mod:`repro.persist.checkpoint`), rewrites ``index.json`` (latest step,
retained steps, per-step meta) and prunes the oldest checkpoints beyond
``keep_last``.

The directory scan — not the index — is authoritative for which steps
exist: the index is a convenience for humans and dashboards and is
rebuilt on every save, so a crash between the checkpoint rename and the
index rewrite cannot lose state.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import uuid
from typing import Any, Mapping

from repro.persist.checkpoint import (
    CheckpointError,
    load_checkpoint,
    read_manifest,
    save_checkpoint,
)

__all__ = ["CheckpointStore", "INDEX_NAME"]

INDEX_NAME = "index.json"

_CKPT_RE = re.compile(r"^ckpt-(\d{8})$")


class CheckpointStore:
    """Keep-last-K checkpoint directory with step addressing.

    Parameters
    ----------
    root:
        Directory holding the checkpoints (created on first save).
    keep_last:
        How many most-recent checkpoints to retain; older ones are
        deleted after each successful save.  ``None`` keeps everything.
    """

    def __init__(self, root: str, keep_last: int | None = 3) -> None:
        if keep_last is not None and keep_last < 1:
            raise ValueError(f"keep_last must be >= 1 or None, got {keep_last}")
        self.root = os.path.abspath(root)
        self.keep_last = keep_last

    # ------------------------------------------------------------------
    def path_for(self, step: int) -> str:
        if step < 0 or step > 99_999_999:
            raise ValueError(f"step out of range: {step}")
        return os.path.join(self.root, f"ckpt-{step:08d}")

    def steps(self) -> list[int]:
        """Steps present on disk, ascending (directory scan, not index)."""
        if not os.path.isdir(self.root):
            return []
        found = []
        for name in os.listdir(self.root):
            match = _CKPT_RE.match(name)
            if match and os.path.isfile(
                os.path.join(self.root, name, "manifest.json")
            ):
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_step(self) -> int | None:
        steps = self.steps()
        return steps[-1] if steps else None

    # ------------------------------------------------------------------
    def save(
        self,
        step: int,
        state: Mapping[str, Any],
        meta: Mapping[str, Any] | None = None,
    ) -> str:
        """Checkpoint *state* as *step*; prune and reindex.  Returns path."""
        meta = dict(meta or {})
        meta.setdefault("step", step)
        path = self.path_for(step)
        save_checkpoint(path, state, meta=meta)
        self._prune()
        self._write_index()
        return path

    def load(self, step: int | None = None, verify: bool = True):
        """Load ``(state, manifest)`` for *step* (default: latest).

        Loading the latest tolerates a concurrent publish or prune
        racing the read: if the step chosen by the directory scan
        vanishes (or tears) before it is fully read, the scan-and-load
        is retried — a hot-swap reader polling a live training run
        always lands on a complete checkpoint.
        """
        if step is not None:
            path = self.path_for(step)
            if not os.path.isdir(path):
                raise CheckpointError(
                    f"no checkpoint for step {step} in {self.root}"
                )
            return load_checkpoint(path, verify=verify)
        last_error: Exception | None = None
        for _ in range(8):
            latest = self.latest_step()
            if latest is None:
                raise CheckpointError(f"no checkpoints in {self.root}")
            try:
                return load_checkpoint(self.path_for(latest), verify=verify)
            except (CheckpointError, OSError) as exc:
                # The step was pruned or is mid-replace; rescan.
                last_error = exc
        raise CheckpointError(
            f"could not load a stable latest checkpoint from {self.root}"
        ) from last_error

    def manifest(self, step: int) -> dict[str, Any]:
        return read_manifest(self.path_for(step))

    # ------------------------------------------------------------------
    def _prune(self) -> None:
        if self.keep_last is None:
            return
        steps = self.steps()
        for step in steps[: -self.keep_last]:
            shutil.rmtree(self.path_for(step), ignore_errors=True)

    def _write_index(self) -> None:
        """Atomically rewrite ``index.json`` (tmp file + rename).

        A step vanishing between the scan and its manifest read (a
        concurrent prune, or a publisher mid-``os.replace``) is skipped
        rather than failing the whole rewrite — the directory scan
        stays authoritative either way.
        """
        entries = []
        for step in self.steps():
            try:
                meta = read_manifest(self.path_for(step)).get("meta", {})
            except (CheckpointError, OSError):
                continue
            entries.append(
                {"step": step, "path": f"ckpt-{step:08d}", "meta": meta}
            )
        index = {
            "latest_step": entries[-1]["step"] if entries else None,
            "keep_last": self.keep_last,
            "checkpoints": entries,
        }
        tmp = os.path.join(self.root, f".tmp-index-{uuid.uuid4().hex[:8]}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(index, fh, sort_keys=True, indent=2)
            fh.write("\n")
        os.replace(tmp, os.path.join(self.root, INDEX_NAME))

    def index(self) -> dict[str, Any]:
        """The last-written ``index.json`` (or a scan-built fallback).

        A missing, truncated or otherwise unreadable index falls back
        to the authoritative directory scan instead of raising —
        concurrent readers may catch the file mid-rewrite on
        filesystems without atomic rename visibility.
        """
        path = os.path.join(self.root, INDEX_NAME)
        if os.path.isfile(path):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    return json.load(fh)
            except (json.JSONDecodeError, OSError):
                pass
        return {"latest_step": self.latest_step(), "keep_last": self.keep_last,
                "checkpoints": []}
