"""Command-line entry point.

Usage::

    python -m repro list                       # available experiments
    python -m repro run fig05_cdf              # one experiment, text table
    python -m repro run fig02_alpha --profile ems --seed 1
    python -m repro run fig05_cdf --telemetry out.jsonl   # + run journal
    python -m repro report                     # the quick report subset
    python -m repro report --all               # every experiment (minutes)
    python -m repro train --checkpoint-dir ck  # checkpointed pipeline run
    python -m repro train --checkpoint-dir ck --resume   # crash-resume
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.profiles import ems_profile, medium_profile, paper_profile, small_profile
from repro.experiments.report import EXPERIMENTS, QUICK, run_experiment, run_report
from repro.obs import RunJournal, Telemetry

PROFILES = {
    "small": small_profile,
    "ems": ems_profile,
    "medium": medium_profile,
    "paper": paper_profile,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PFDRL reproduction — regenerate the paper's figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    p_run = sub.add_parser("run", help="run one experiment and print its table")
    p_run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    p_run.add_argument("--profile", choices=sorted(PROFILES), default=None,
                       help="scale profile (default: the experiment's own)")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--telemetry", metavar="PATH", default=None,
                       help="write a JSONL run journal (phase timings, "
                            "work units) to PATH")

    p_rep = sub.add_parser("report", help="run a set of experiments as one report")
    p_rep.add_argument("--all", action="store_true",
                       help="run every experiment (minutes) instead of the quick subset")
    p_rep.add_argument("--profile", choices=sorted(PROFILES), default=None)
    p_rep.add_argument("--seed", type=int, default=0)
    p_rep.add_argument("--telemetry", metavar="PATH", default=None,
                       help="write a JSONL run journal (phase timings, "
                            "work units) to PATH")

    p_tr = sub.add_parser(
        "train",
        help="run the end-to-end pipeline once, with optional durable "
             "checkpoints and crash-resume",
    )
    p_tr.add_argument("--residences", type=int, default=4)
    p_tr.add_argument("--days", type=int, default=4)
    p_tr.add_argument("--minutes-per-day", type=int, default=240)
    p_tr.add_argument("--model", default="lr",
                      help="forecaster model (lr, svm, svm_rbf, bp, lstm)")
    p_tr.add_argument("--episodes", type=int, default=2)
    p_tr.add_argument("--seed", type=int, default=0)
    p_tr.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                      help="durable checkpoint store; snapshot complete run "
                           "state every --checkpoint-every days")
    p_tr.add_argument("--checkpoint-every", type=int, default=1,
                      help="checkpoint cadence in simulated days (default 1)")
    p_tr.add_argument("--keep-last", type=int, default=3,
                      help="retain only the newest K checkpoints (default 3)")
    p_tr.add_argument("--resume", action="store_true",
                      help="restore the latest checkpoint in --checkpoint-dir "
                           "and continue; bit-identical to the uninterrupted run")
    p_tr.add_argument("--stop-after", type=int, metavar="N", default=None,
                      help="checkpoint and stop once training day N completes "
                           "(simulated crash; exits 0)")
    p_tr.add_argument("--result-json", metavar="PATH", default=None,
                      help="write the full SystemResult as JSON to PATH")
    p_tr.add_argument("--telemetry", metavar="PATH", default=None,
                      help="write a JSONL run journal to PATH")
    return parser


def run_train(args: argparse.Namespace, telemetry: Telemetry | None) -> int:
    from repro.config import DataConfig, DQNConfig, ForecastConfig, PFDRLConfig
    from repro.core import PFDRLSystem
    from repro.persist import CheckpointStore, TrainingInterrupted

    mpd = args.minutes_per_day
    config = PFDRLConfig(
        data=DataConfig(
            n_residences=args.residences,
            n_days=args.days,
            minutes_per_day=mpd,
            heterogeneity=0.7,
            seed=args.seed,
        ),
        forecast=ForecastConfig(
            model=args.model, window=max(2, mpd // 24), horizon=max(2, mpd // 24)
        ),
        dqn=DQNConfig(hidden_width=16, reward_scale=1.0 / 30.0),
        episodes=args.episodes,
        seed=args.seed,
    )
    store = (
        CheckpointStore(args.checkpoint_dir, keep_last=args.keep_last)
        if args.checkpoint_dir
        else None
    )
    system = PFDRLSystem(config, telemetry=telemetry)
    try:
        result = system.run(
            checkpoint_store=store,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            stop_after_step=args.stop_after,
        )
    except TrainingInterrupted as exc:
        print(f"checkpointed and stopped after training day {exc.step} "
              f"(resume with --resume)")
        return 0
    print(f"forecast_accuracy   {result.forecast_accuracy:.4f}")
    print(f"mean_reward_frac    {float(result.ems.reward_fraction.mean()):.4f}")
    print(f"saved_standby_frac  {result.ems.saved_standby_fraction:.4f}")
    print(f"train/test days     {result.n_train_days}/{result.n_test_days}")
    if args.result_json:
        with open(args.result_json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, sort_keys=True)
        print(f"result: {args.result_json}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            marker = "*" if name in QUICK else " "
            print(f"{marker} {name}")
        print("\n(* = included in the quick `report` subset)")
        return 0

    profile = (
        PROFILES[args.profile](args.seed) if getattr(args, "profile", None) else None
    )
    telemetry = (
        Telemetry(journal=RunJournal()) if getattr(args, "telemetry", None) else None
    )
    if args.command == "train":
        code = run_train(args, telemetry)
        if telemetry is not None and telemetry.journal is not None:
            n = telemetry.journal.write(args.telemetry)
            print(f"telemetry: {n} events -> {args.telemetry}", file=sys.stderr)
        return code
    if args.command == "run":
        result = run_experiment(args.experiment, profile, args.seed, telemetry=telemetry)
        print(result.to_text())
    elif args.command == "report":
        names = sorted(EXPERIMENTS) if args.all else None
        print(run_report(names, profile, args.seed, telemetry=telemetry))
    else:
        return 2  # pragma: no cover - argparse enforces commands
    if telemetry is not None and telemetry.journal is not None:
        n = telemetry.journal.write(args.telemetry)
        print(f"telemetry: {n} events -> {args.telemetry}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
