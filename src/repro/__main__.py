"""Command-line entry point.

Usage::

    python -m repro list                       # available experiments
    python -m repro run fig05_cdf              # one experiment, text table
    python -m repro run fig02_alpha --profile ems --seed 1
    python -m repro run fig05_cdf --telemetry out.jsonl   # + run journal
    python -m repro report                     # the quick report subset
    python -m repro report --all               # every experiment (minutes)
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.profiles import ems_profile, medium_profile, paper_profile, small_profile
from repro.experiments.report import EXPERIMENTS, QUICK, run_experiment, run_report
from repro.obs import RunJournal, Telemetry

PROFILES = {
    "small": small_profile,
    "ems": ems_profile,
    "medium": medium_profile,
    "paper": paper_profile,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PFDRL reproduction — regenerate the paper's figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    p_run = sub.add_parser("run", help="run one experiment and print its table")
    p_run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    p_run.add_argument("--profile", choices=sorted(PROFILES), default=None,
                       help="scale profile (default: the experiment's own)")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--telemetry", metavar="PATH", default=None,
                       help="write a JSONL run journal (phase timings, "
                            "work units) to PATH")

    p_rep = sub.add_parser("report", help="run a set of experiments as one report")
    p_rep.add_argument("--all", action="store_true",
                       help="run every experiment (minutes) instead of the quick subset")
    p_rep.add_argument("--profile", choices=sorted(PROFILES), default=None)
    p_rep.add_argument("--seed", type=int, default=0)
    p_rep.add_argument("--telemetry", metavar="PATH", default=None,
                       help="write a JSONL run journal (phase timings, "
                            "work units) to PATH")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            marker = "*" if name in QUICK else " "
            print(f"{marker} {name}")
        print("\n(* = included in the quick `report` subset)")
        return 0

    profile = PROFILES[args.profile](args.seed) if args.profile else None
    telemetry = (
        Telemetry(journal=RunJournal()) if getattr(args, "telemetry", None) else None
    )
    if args.command == "run":
        result = run_experiment(args.experiment, profile, args.seed, telemetry=telemetry)
        print(result.to_text())
    elif args.command == "report":
        names = sorted(EXPERIMENTS) if args.all else None
        print(run_report(names, profile, args.seed, telemetry=telemetry))
    else:
        return 2  # pragma: no cover - argparse enforces commands
    if telemetry is not None and telemetry.journal is not None:
        n = telemetry.journal.write(args.telemetry)
        print(f"telemetry: {n} events -> {args.telemetry}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
