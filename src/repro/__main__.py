"""Command-line entry point.

Usage::

    python -m repro list                       # available experiments
    python -m repro run fig05_cdf              # one experiment, text table
    python -m repro run fig02_alpha --profile ems --seed 1
    python -m repro run fig05_cdf --telemetry out.jsonl   # + run journal
    python -m repro report                     # the quick report subset
    python -m repro report --all               # every experiment (minutes)
    python -m repro train --checkpoint-dir ck  # checkpointed pipeline run
    python -m repro train --checkpoint-dir ck --resume   # crash-resume
    python -m repro serve --checkpoint-dir ck  # answer schedule queries
    python -m repro serve --checkpoint-dir ck --swap-demo   # + hot-swap
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.profiles import ems_profile, medium_profile, paper_profile, small_profile
from repro.experiments.report import EXPERIMENTS, QUICK, run_experiment, run_report
from repro.obs import RunJournal, Telemetry

PROFILES = {
    "small": small_profile,
    "ems": ems_profile,
    "medium": medium_profile,
    "paper": paper_profile,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PFDRL reproduction — regenerate the paper's figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    p_run = sub.add_parser("run", help="run one experiment and print its table")
    p_run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    p_run.add_argument("--profile", choices=sorted(PROFILES), default=None,
                       help="scale profile (default: the experiment's own)")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--telemetry", metavar="PATH", default=None,
                       help="write a JSONL run journal (phase timings, "
                            "work units) to PATH")

    p_rep = sub.add_parser("report", help="run a set of experiments as one report")
    p_rep.add_argument("--all", action="store_true",
                       help="run every experiment (minutes) instead of the quick subset")
    p_rep.add_argument("--profile", choices=sorted(PROFILES), default=None)
    p_rep.add_argument("--seed", type=int, default=0)
    p_rep.add_argument("--telemetry", metavar="PATH", default=None,
                       help="write a JSONL run journal (phase timings, "
                            "work units) to PATH")

    def add_pipeline_args(p: argparse.ArgumentParser) -> None:
        """Geometry shared by `train` and `serve` — the serving side must
        rebuild the *identical* config or the checkpoint digest guard
        refuses the snapshot."""
        p.add_argument("--residences", type=int, default=4)
        p.add_argument("--days", type=int, default=4)
        p.add_argument("--minutes-per-day", type=int, default=240)
        p.add_argument("--model", default="lr",
                       help="forecaster model (lr, svm, svm_rbf, bp, lstm)")
        p.add_argument("--episodes", type=int, default=2)
        p.add_argument("--seed", type=int, default=0)
        # Two-tier federation (opt-in).  Leaving --cluster-size unset
        # keeps hierarchy=None — the flat mesh, and checkpoint digests
        # identical to earlier builds.
        p.add_argument("--cluster-size", type=int, default=None,
                       help="residences per neighbourhood cluster; enables "
                            "two-tier hierarchical federation (default: flat "
                            "mesh)")
        p.add_argument("--participation", type=float, default=1.0,
                       help="fraction of each cluster sampled per γ round "
                            "(hierarchical mode; default 1.0)")
        p.add_argument("--upper-topology", default="ring",
                       choices=("full", "ring", "star"),
                       help="aggregator-tier topology (hierarchical mode; "
                            "default ring)")
        # Grid-aware scenario pack (opt-in).  Leaving --scenario unset
        # keeps scenario=None — the classic pipeline, and checkpoint
        # digests identical to earlier builds.
        p.add_argument("--scenario", default=None,
                       choices=("tou", "realtime", "dr"),
                       help="enable the grid-aware scenario pack "
                            "(schedulable loads + DERs) under the given "
                            "pricing regime (default: off)")

    p_tr = sub.add_parser(
        "train",
        help="run the end-to-end pipeline once, with optional durable "
             "checkpoints and crash-resume",
    )
    add_pipeline_args(p_tr)
    p_tr.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                      help="durable checkpoint store; snapshot complete run "
                           "state every --checkpoint-every days")
    p_tr.add_argument("--checkpoint-every", type=int, default=1,
                      help="checkpoint cadence in simulated days (default 1)")
    p_tr.add_argument("--keep-last", type=int, default=3,
                      help="retain only the newest K checkpoints (default 3)")
    p_tr.add_argument("--resume", action="store_true",
                      help="restore the latest checkpoint in --checkpoint-dir "
                           "and continue; bit-identical to the uninterrupted run")
    p_tr.add_argument("--stop-after", type=int, metavar="N", default=None,
                      help="checkpoint and stop once training day N completes "
                           "(simulated crash; exits 0)")
    p_tr.add_argument("--result-json", metavar="PATH", default=None,
                      help="write the full SystemResult as JSON to PATH")
    p_tr.add_argument("--telemetry", metavar="PATH", default=None,
                      help="write a JSONL run journal to PATH")

    p_sv = sub.add_parser(
        "serve",
        help="load a trained checkpoint as an immutable snapshot and "
             "answer a burst of per-residence schedule queries",
    )
    add_pipeline_args(p_sv)
    p_sv.add_argument("--checkpoint-dir", metavar="DIR", required=True,
                      help="checkpoint store written by `train` under the "
                           "same pipeline arguments")
    p_sv.add_argument("--queries", type=int, default=64,
                      help="number of simulated-residence queries (default 64)")
    p_sv.add_argument("--trace-minutes", type=int, default=None,
                      help="minutes of readings per query (default: a few "
                           "forecast horizons)")
    p_sv.add_argument("--batch-size", type=int, default=64,
                      help="serving micro-batch size (default 64)")
    p_sv.add_argument("--query-seed", type=int, default=123,
                      help="load-generator seed (default 123)")
    p_sv.add_argument("--swap-demo", action="store_true",
                      help="republish the latest checkpoint mid-burst and "
                           "hot-swap to it; asserts identical answers and "
                           "zero dropped queries")
    p_sv.add_argument("--result-json", metavar="PATH", default=None,
                      help="write the serving summary as JSON to PATH")
    p_sv.add_argument("--telemetry", metavar="PATH", default=None,
                      help="write a JSONL run journal to PATH")
    return parser


def pipeline_config(args: argparse.Namespace):
    """The one config both `train` and `serve` build from shared args.

    Serving reconstructs it to satisfy the checkpoint digest guard, so
    any change here invalidates existing checkpoints for the CLI.
    """
    from repro.config import (
        DataConfig,
        DQNConfig,
        FederationConfig,
        ForecastConfig,
        HierarchyConfig,
        PFDRLConfig,
        ScenarioConfig,
    )

    mpd = args.minutes_per_day
    hierarchy = None
    if getattr(args, "cluster_size", None) is not None:
        hierarchy = HierarchyConfig(
            cluster_size=args.cluster_size,
            upper_topology=args.upper_topology,
            participation=args.participation,
            seed=args.seed,
        )
    scenario = None
    if getattr(args, "scenario", None) is not None:
        scenario = ScenarioConfig(pricing=args.scenario, seed=args.seed)
    return PFDRLConfig(
        data=DataConfig(
            n_residences=args.residences,
            n_days=args.days,
            minutes_per_day=mpd,
            heterogeneity=0.7,
            seed=args.seed,
        ),
        forecast=ForecastConfig(
            model=args.model, window=max(2, mpd // 24), horizon=max(2, mpd // 24)
        ),
        dqn=DQNConfig(hidden_width=16, reward_scale=1.0 / 30.0),
        federation=FederationConfig(hierarchy=hierarchy),
        episodes=args.episodes,
        scenario=scenario,
        seed=args.seed,
    )


def run_train(args: argparse.Namespace, telemetry: Telemetry | None) -> int:
    from repro.core import PFDRLSystem
    from repro.persist import CheckpointStore, TrainingInterrupted

    config = pipeline_config(args)
    store = (
        CheckpointStore(args.checkpoint_dir, keep_last=args.keep_last)
        if args.checkpoint_dir
        else None
    )
    system = PFDRLSystem(config, telemetry=telemetry)
    try:
        result = system.run(
            checkpoint_store=store,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            stop_after_step=args.stop_after,
        )
    except TrainingInterrupted as exc:
        print(f"checkpointed and stopped after training day {exc.step} "
              f"(resume with --resume)")
        return 0
    print(f"forecast_accuracy   {result.forecast_accuracy:.4f}")
    print(f"mean_reward_frac    {float(result.ems.reward_fraction.mean()):.4f}")
    print(f"saved_standby_frac  {result.ems.saved_standby_fraction:.4f}")
    print(f"train/test days     {result.n_train_days}/{result.n_test_days}")
    if args.result_json:
        with open(args.result_json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, sort_keys=True)
        print(f"result: {args.result_json}", file=sys.stderr)
    return 0


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def run_serve(args: argparse.Namespace, telemetry: Telemetry | None) -> int:
    import time

    import numpy as np

    from repro.persist import CheckpointStore
    from repro.serve import (
        ModelSnapshot,
        ServingEngine,
        SnapshotWatcher,
        make_queries,
        republish_latest,
    )

    config = pipeline_config(args)
    # Readers never prune: retention is the trainer's decision.
    store = CheckpointStore(args.checkpoint_dir, keep_last=None)
    snapshot = ModelSnapshot.load(store, config)
    engine = ServingEngine(snapshot, telemetry=telemetry, max_batch=args.batch_size)
    watcher = SnapshotWatcher(engine, store, config, telemetry=telemetry)
    queries = make_queries(
        config, args.queries, trace_minutes=args.trace_minutes, seed=args.query_seed
    )
    print(f"serving {snapshot.generation}: {len(queries)} queries over "
          f"{len(snapshot.residences())} trained residences")

    engine.start()
    t_start = time.perf_counter()
    first = [p.result(timeout=120.0) for p in
             [engine.submit(q) for q in queries]]
    swap_info = None
    answers = list(first)
    if args.swap_demo:
        republish_latest(store)
        swapped = watcher.check_once()
        second = [p.result(timeout=120.0) for p in
                  [engine.submit(q) for q in queries]]
        identical = all(
            np.array_equal(a.actions[d], b.actions[d])
            for a, b in zip(first, second)
            for d in a.actions
        )
        if not (swapped and identical and engine.dropped == 0):
            print("hot-swap demo FAILED: "
                  f"swapped={swapped} identical={identical} "
                  f"dropped={engine.dropped}", file=sys.stderr)
            engine.stop()
            return 1
        swap_info = {
            "swapped": True,
            "generations": [first[0].generation, second[0].generation],
            "identical_answers": True,
            "dropped": engine.dropped,
        }
        answers += second
    elapsed = time.perf_counter() - t_start
    engine.stop()

    latencies = sorted(a.latency_s for a in answers)
    qps = len(answers) / elapsed if elapsed > 0 else float("inf")
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)
    if telemetry is not None:
        telemetry.event(
            "serve.burst",
            generation=engine.generation,
            queries=engine.queries_served,
            batches=engine.batches_served,
            dropped=engine.dropped,
            swaps=engine.swaps,
            qps=qps,
            p50_ms=p50 * 1e3,
            p99_ms=p99 * 1e3,
        )
    print(f"queries answered    {engine.queries_served} "
          f"(batches: {engine.batches_served}, dropped: {engine.dropped})")
    print(f"throughput          {qps:.1f} queries/s")
    print(f"latency p50/p99     {p50 * 1e3:.2f} / {p99 * 1e3:.2f} ms")
    print(f"generation          {engine.generation} (swaps: {engine.swaps})")
    if args.result_json:
        summary = {
            "generation": engine.generation,
            "queries": len(answers),
            "batches": engine.batches_served,
            "dropped": engine.dropped,
            "swaps": engine.swaps,
            "qps": qps,
            "p50_ms": p50 * 1e3,
            "p99_ms": p99 * 1e3,
            "swap_demo": swap_info,
        }
        with open(args.result_json, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, sort_keys=True, indent=2)
        print(f"result: {args.result_json}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            marker = "*" if name in QUICK else " "
            print(f"{marker} {name}")
        print("\n(* = included in the quick `report` subset)")
        return 0

    profile = (
        PROFILES[args.profile](args.seed) if getattr(args, "profile", None) else None
    )
    telemetry = (
        Telemetry(journal=RunJournal()) if getattr(args, "telemetry", None) else None
    )
    if args.command in ("train", "serve"):
        runner = run_train if args.command == "train" else run_serve
        code = runner(args, telemetry)
        if telemetry is not None and telemetry.journal is not None:
            n = telemetry.journal.write(args.telemetry)
            print(f"telemetry: {n} events -> {args.telemetry}", file=sys.stderr)
        return code
    if args.command == "run":
        result = run_experiment(args.experiment, profile, args.seed, telemetry=telemetry)
        print(result.to_text())
    elif args.command == "report":
        names = sorted(EXPERIMENTS) if args.all else None
        print(run_report(names, profile, args.seed, telemetry=telemetry))
    else:
        return 2  # pragma: no cover - argparse enforces commands
    if telemetry is not None and telemetry.journal is not None:
        n = telemetry.journal.write(args.telemetry)
        print(f"telemetry: {n} events -> {args.telemetry}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
