"""Monetary-cost metrics (paper §4.1, metric 4).

``C_{D_Xn, t} = (RV_{n,t} - V_{n,t}) · p_t`` — saved energy priced at the
plan's time-varying rate.
"""

from __future__ import annotations

import numpy as np

from repro.data.pricing import PricePlan

__all__ = ["monetary_cost", "saved_monetary_cost"]


def monetary_cost(
    energy_kwh_per_step: np.ndarray,
    hour_of_day: np.ndarray,
    day_of_year: np.ndarray,
    plan: PricePlan,
) -> float:
    """Total $ for a per-step energy series under *plan*."""
    energy = np.asarray(energy_kwh_per_step, dtype=np.float64)
    hour = np.asarray(hour_of_day, dtype=np.float64)
    day = np.asarray(day_of_year, dtype=np.float64)
    if not (energy.shape == hour.shape == day.shape):
        raise ValueError("energy, hour and day series must align")
    return plan.cost(energy, hour, day)


def saved_monetary_cost(
    baseline_kw: np.ndarray,
    controlled_kw: np.ndarray,
    hour_of_day: np.ndarray,
    day_of_year: np.ndarray,
    plan: PricePlan,
) -> float:
    """$ saved by the EMS: price the per-minute energy delta under *plan*."""
    baseline = np.asarray(baseline_kw, dtype=np.float64)
    controlled = np.asarray(controlled_kw, dtype=np.float64)
    if baseline.shape != controlled.shape:
        raise ValueError("traces must align")
    delta_kwh = (baseline - controlled) / 60.0
    return monetary_cost(delta_kwh, hour_of_day, day_of_year, plan)
