"""Prediction-accuracy metric (paper §4.1, metric 2).

``Ac_n = 1 - |V_n - RV_n| / RV_n`` where ``V`` is predicted and ``RV`` is
real.  The paper leaves the ``RV = 0`` case (device off) unspecified; we
treat a reading below ``zero_eps`` as off and score the prediction 1.0
when it is also (near) zero, else 0.0.  Results are clipped to [0, 1] so
a wildly wrong prediction cannot produce unbounded negative accuracy.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "prediction_accuracy",
    "mean_accuracy",
    "accuracy_series",
    "horizon_energy_accuracy",
]


def accuracy_series(
    predicted: np.ndarray,
    real: np.ndarray,
    zero_eps: float = 1e-6,
) -> np.ndarray:
    """Element-wise accuracy in [0, 1] for aligned prediction/real arrays."""
    predicted = np.asarray(predicted, dtype=np.float64)
    real = np.asarray(real, dtype=np.float64)
    if predicted.shape != real.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {real.shape}")
    out = np.empty(predicted.shape, dtype=np.float64)
    off = np.abs(real) < zero_eps
    out[off] = (np.abs(predicted[off]) < max(zero_eps * 10, 1e-5)).astype(np.float64)
    rv = real[~off]
    out[~off] = 1.0 - np.abs(predicted[~off] - rv) / np.abs(rv)
    return np.clip(out, 0.0, 1.0)


def prediction_accuracy(
    predicted: np.ndarray, real: np.ndarray, zero_eps: float = 1e-6
) -> float:
    """Mean element-wise accuracy (scalar)."""
    series = accuracy_series(predicted, real, zero_eps=zero_eps)
    return float(series.mean()) if series.size else float("nan")


def horizon_energy_accuracy(
    predicted: np.ndarray,
    real: np.ndarray,
    floor_fraction: float = 0.05,
    scale: float = 1.0,
) -> np.ndarray:
    """Per-window accuracy of *total horizon energy* (the paper's usage).

    The paper predicts "the energy consumption ... for the following hour"
    and scores ``Ac = 1 - |V - RV| / RV``; at minute granularity ``RV = 0``
    minutes make that undefined, so — as one must with the real Pecan
    Street data — we score each forecast window on its energy total, with
    the denominator floored at ``floor_fraction`` of the window's full-on
    energy (``scale * horizon``) so near-idle windows are scored relative
    to the device's scale rather than to ~0.

    Parameters
    ----------
    predicted / real:
        ``(n, horizon)`` aligned windows (normalised or kW — same units).
    floor_fraction:
        Denominator floor as a fraction of ``scale * horizon``.
    scale:
        The series' full-on level (1.0 for on-normalised series).

    Returns
    -------
    ``(n,)`` accuracies clipped to [0, 1].
    """
    predicted = np.atleast_2d(np.asarray(predicted, dtype=np.float64))
    real = np.atleast_2d(np.asarray(real, dtype=np.float64))
    if predicted.shape != real.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {real.shape}")
    if not 0.0 <= floor_fraction <= 1.0:
        raise ValueError("floor_fraction must be in [0, 1]")
    pv = predicted.sum(axis=1)
    rv = real.sum(axis=1)
    floor = floor_fraction * scale * real.shape[1]
    denom = np.maximum(np.abs(rv), max(floor, 1e-12))
    return np.clip(1.0 - np.abs(pv - rv) / denom, 0.0, 1.0)


def mean_accuracy(per_sample: np.ndarray) -> float:
    """Mean of a precomputed accuracy series (NaN-safe)."""
    per_sample = np.asarray(per_sample, dtype=np.float64)
    if per_sample.size == 0:
        return float("nan")
    return float(np.nanmean(per_sample))
