"""Timing harness (paper §4.1, metric 5 — training/testing latency).

Wall clock alone does not transfer across hardware, so every record also
carries *work units* (SGD steps taken, parameters broadcast); the paper's
relative-overhead claims (Figs. 13-14) are asserted on those, with wall
clock reported alongside.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["TimingRecord", "Stopwatch", "time_callable"]


@dataclass
class TimingRecord:
    """One labelled measurement: seconds plus optional work counters."""

    label: str
    seconds: float
    work_units: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")


class Stopwatch:
    """Accumulating multi-segment timer.

    >>> sw = Stopwatch()
    >>> with sw.measure("train"):
    ...     pass
    >>> sw.total("train") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        self._work: dict[str, dict[str, float]] = {}

    def measure(self, label: str) -> "_Segment":
        return _Segment(self, label)

    def add(self, label: str, seconds: float) -> None:
        self._totals[label] = self._totals.get(label, 0.0) + seconds
        self._counts[label] = self._counts.get(label, 0) + 1

    def add_work(self, label: str, **units: float) -> None:
        bucket = self._work.setdefault(label, {})
        for k, v in units.items():
            bucket[k] = bucket.get(k, 0.0) + v

    def total(self, label: str) -> float:
        return self._totals.get(label, 0.0)

    def count(self, label: str) -> int:
        return self._counts.get(label, 0)

    def work(self, label: str) -> dict[str, float]:
        return dict(self._work.get(label, {}))

    def record(self, label: str) -> TimingRecord:
        return TimingRecord(label, self.total(label), self.work(label))

    def labels(self) -> list[str]:
        return sorted(set(self._totals) | set(self._work))

    def state_dict(self) -> dict:
        """Complete mutable state as a checkpointable tree."""
        return {
            "totals": dict(self._totals),
            "counts": dict(self._counts),
            "work": {k: dict(v) for k, v in self._work.items()},
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place."""
        self._totals = {k: float(v) for k, v in state["totals"].items()}
        self._counts = {k: int(v) for k, v in state["counts"].items()}
        self._work = {
            k: {u: float(v) for u, v in bucket.items()}
            for k, bucket in state["work"].items()
        }


class _Segment:
    def __init__(self, sw: Stopwatch, label: str) -> None:
        self._sw = sw
        self._label = label
        self._start = 0.0

    def __enter__(self) -> "_Segment":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._sw.add(self._label, time.perf_counter() - self._start)


def time_callable(fn: Callable[[], Any], label: str = "call") -> tuple[Any, TimingRecord]:
    """Run *fn* once, returning (result, TimingRecord)."""
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    return result, TimingRecord(label, elapsed)
