"""Convergence-speed metrics for the Fig. 9 analysis.

The paper's speed claim ("achieve the best performance in a short
time") needs numbers: given a per-day performance series, when does a
method first reach a target, and what is its area under the curve
(higher = converged earlier *and* higher)?
"""

from __future__ import annotations

import numpy as np

__all__ = ["days_to_target", "auc", "speedup"]


def days_to_target(series: np.ndarray, target: float) -> float:
    """First 1-based index at which *series* reaches *target*.

    Returns ``inf`` when the target is never reached — callers can rank
    methods without special-casing.
    """
    series = np.asarray(series, dtype=float)
    hits = np.nonzero(series >= target)[0]
    return float(hits[0] + 1) if hits.size else float("inf")


def auc(series: np.ndarray) -> float:
    """Mean of the performance series (normalised area under the curve).

    Invariant to series length, so methods tracked for different day
    counts stay comparable.
    """
    series = np.asarray(series, dtype=float)
    if series.size == 0:
        return float("nan")
    return float(np.nanmean(series))


def speedup(fast: np.ndarray, slow: np.ndarray, target: float) -> float:
    """How many times faster *fast* reaches *target* than *slow*.

    ``inf`` when only *fast* gets there; ``nan`` when neither does.
    """
    d_fast = days_to_target(fast, target)
    d_slow = days_to_target(slow, target)
    if np.isinf(d_fast) and np.isinf(d_slow):
        return float("nan")
    if np.isinf(d_fast):
        return 0.0
    if np.isinf(d_slow):
        return float("inf")
    return d_slow / d_fast
