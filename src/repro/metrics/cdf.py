"""Empirical CDF utilities for the Fig. 5 accuracy-distribution plot."""

from __future__ import annotations

import numpy as np

__all__ = ["empirical_cdf", "cdf_at"]


def empirical_cdf(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted samples and their empirical CDF values.

    Returns ``(x, F)`` with ``F[i] = (i+1)/n`` — the usual right-continuous
    step estimate.
    """
    samples = np.asarray(samples, dtype=np.float64).ravel()
    if samples.size == 0:
        return np.zeros(0), np.zeros(0)
    x = np.sort(samples)
    F = np.arange(1, x.size + 1, dtype=np.float64) / x.size
    return x, F


def cdf_at(samples: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Evaluate the empirical CDF at arbitrary *points* (vectorised)."""
    samples = np.sort(np.asarray(samples, dtype=np.float64).ravel())
    points = np.asarray(points, dtype=np.float64)
    if samples.size == 0:
        return np.zeros_like(points)
    idx = np.searchsorted(samples, points, side="right")
    return idx / samples.size
