"""Performance metrics (paper §4.1).

1. Prediction accuracy  ``Ac_n = 1 - |V_n - RV_n| / RV_n``
2. Saved energy value   ``RV_n - V_n`` (realised via EMS actions here)
3. Saved monetary cost  ``C = Σ (RV - V) · p_t``
4. Time overhead        training / testing latency
plus CDF utilities for Fig. 5.
"""

from repro.metrics.accuracy import (
    accuracy_series,
    horizon_energy_accuracy,
    mean_accuracy,
    prediction_accuracy,
)
from repro.metrics.cdf import empirical_cdf, cdf_at
from repro.metrics.convergence import auc, days_to_target, speedup
from repro.metrics.energy import (
    saved_energy_kwh,
    saved_standby_fraction,
    standby_energy_kwh,
)
from repro.metrics.monetary import monetary_cost, saved_monetary_cost
from repro.metrics.timing import Stopwatch, TimingRecord, time_callable

__all__ = [
    "prediction_accuracy",
    "mean_accuracy",
    "accuracy_series",
    "horizon_energy_accuracy",
    "empirical_cdf",
    "cdf_at",
    "saved_energy_kwh",
    "standby_energy_kwh",
    "saved_standby_fraction",
    "monetary_cost",
    "saved_monetary_cost",
    "auc",
    "days_to_target",
    "speedup",
    "Stopwatch",
    "TimingRecord",
    "time_callable",
]
