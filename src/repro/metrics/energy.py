"""Energy-savings metrics (paper §4.1, metric 3).

Power series are kW at minute resolution; energy integrates as
``kWh = Σ kW / 60``.  "Saved" energy compares a baseline trace with the
trace under EMS control (standby minutes switched off).
"""

from __future__ import annotations

import numpy as np

__all__ = ["standby_energy_kwh", "saved_energy_kwh", "saved_standby_fraction"]


def standby_energy_kwh(power_kw: np.ndarray, mode: np.ndarray) -> float:
    """Energy consumed while in standby (mode == 1)."""
    power_kw = np.asarray(power_kw, dtype=np.float64)
    mode = np.asarray(mode)
    if power_kw.shape != mode.shape:
        raise ValueError("power and mode must align")
    return float(power_kw[mode == 1].sum() / 60.0)


def saved_energy_kwh(baseline_kw: np.ndarray, controlled_kw: np.ndarray) -> float:
    """Energy difference between uncontrolled and EMS-controlled traces."""
    baseline_kw = np.asarray(baseline_kw, dtype=np.float64)
    controlled_kw = np.asarray(controlled_kw, dtype=np.float64)
    if baseline_kw.shape != controlled_kw.shape:
        raise ValueError("traces must align")
    return float((baseline_kw - controlled_kw).sum() / 60.0)


def saved_standby_fraction(
    baseline_kw: np.ndarray, controlled_kw: np.ndarray, mode: np.ndarray
) -> float:
    """Fraction of standby energy recovered by the EMS, in [0, 1]...

    ...modulo a controller that *adds* energy (negative savings), which is
    reported as a negative fraction rather than clipped, so regressions are
    visible.  Returns NaN when the trace contains no standby energy.
    """
    total_standby = standby_energy_kwh(baseline_kw, mode)
    if total_standby <= 0:
        return float("nan")
    mode = np.asarray(mode)
    saved = (
        np.asarray(baseline_kw, dtype=np.float64)[mode == 1]
        - np.asarray(controlled_kw, dtype=np.float64)[mode == 1]
    ).sum() / 60.0
    return float(saved / total_standby)
