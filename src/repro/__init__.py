"""repro — full reproduction of *PFDRL: Personalized Federated Deep
Reinforcement Learning for Residential Energy Management* (ICPP 2023).

Subpackages
-----------
- ``repro.data``        synthetic Pecan-Street-like workload substrate
- ``repro.nn``          from-scratch numpy neural-network stack
- ``repro.forecast``    LR / SVR / BP / LSTM load forecasters
- ``repro.federated``   decentralized federated learning (DFL, Algorithm 1)
- ``repro.rl``          device-MDP environment + DQN agent
- ``repro.core``        PFDRL (Algorithm 2): personalization + orchestration
- ``repro.baselines``   Local / Cloud / FL / FRL comparison pipelines
- ``repro.metrics``     accuracy, energy, monetary and timing metrics
- ``repro.obs``         run telemetry: counters/timers + JSONL run journal
- ``repro.parallel``    multi-process fan-out over residences
- ``repro.experiments`` one module per paper figure/table
"""

from repro.config import (
    DataConfig,
    DQNConfig,
    FaultConfig,
    FederationConfig,
    ForecastConfig,
    PFDRLConfig,
)

__version__ = "1.0.0"

__all__ = [
    "DataConfig",
    "ForecastConfig",
    "DQNConfig",
    "FederationConfig",
    "FaultConfig",
    "PFDRLConfig",
    "__version__",
]
