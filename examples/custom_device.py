"""Extending the substrate: register a custom device type and manage it.

Shows the extension points a downstream user needs: a new
:class:`repro.data.devices.DeviceSpec` in the catalog, a workload built
around it, and the standard pipeline run unchanged on top.

Run:  python examples/custom_device.py
"""

import numpy as np

from repro.config import (
    DataConfig,
    DQNConfig,
    FederationConfig,
    ForecastConfig,
    PFDRLConfig,
)
from repro.core import PFDRLSystem
from repro.data.devices import DEVICE_CATALOG, DeviceSpec


def register_ev_charger() -> None:
    """A level-1 EV charger: 1.4 kW charging, 25 W idle electronics."""
    if "ev_charger" in DEVICE_CATALOG:
        return
    DEVICE_CATALOG["ev_charger"] = DeviceSpec(
        name="ev_charger",
        on_kw=1.4,
        standby_kw=0.025,
        usage_peaks=(22.5,),      # overnight charging, plugged in ~22:30
        usage_widths=(2.0,),
        usage_scale=0.7,
        off_at_night_prob=0.0,
    )


def main() -> None:
    register_ev_charger()
    spec = DEVICE_CATALOG["ev_charger"]
    print(f"registered {spec.name}: on={spec.on_kw} kW, standby={spec.standby_kw} kW")

    config = PFDRLConfig(
        data=DataConfig(
            n_residences=4,
            n_days=4,
            minutes_per_day=240,
            device_types=("tv", "light", "ev_charger"),
            heterogeneity=0.5,
            seed=1,
        ),
        forecast=ForecastConfig(model="lr", window=10, horizon=10),
        dqn=DQNConfig(
            hidden_width=16, learning_rate=0.005, learn_every=3,
            epsilon_decay_steps=800, reward_scale=1 / 30,
        ),
        federation=FederationConfig(beta_hours=6, gamma_hours=6),
        episodes=2,
    )
    result = PFDRLSystem(config).run()

    print(f"\nforecast accuracy       : {result.forecast_accuracy:.1%}")
    print(f"standby energy saved    : {result.ems.saved_standby_fraction:.1%}")
    # The charger's idle electronics are the big win: 25 W x idle hours.
    per_res = result.ems.saved_standby_kwh
    print(f"saved per residence     : {np.round(per_res, 3)} kWh")


if __name__ == "__main__":
    main()
