"""Extending the substrate: register a custom device type and manage it.

Shows the extension points a downstream user needs: a new
:class:`repro.data.devices.DeviceSpec` in the catalog, a workload built
around it, and the standard pipeline run unchanged on top.

(The catalog already ships an ``ev_charger`` — a *schedulable* spec used
by the scenario pack — so this example registers a pool pump instead.)

Run:  python examples/custom_device.py
"""

import numpy as np

from repro.config import (
    DataConfig,
    DQNConfig,
    FederationConfig,
    ForecastConfig,
    PFDRLConfig,
)
from repro.core import PFDRLSystem
from repro.data.devices import DEVICE_CATALOG, DeviceSpec


def register_pool_pump() -> None:
    """A single-speed pool pump: 1.1 kW running, 15 W idle controller."""
    if "pool_pump" in DEVICE_CATALOG:
        return
    DEVICE_CATALOG["pool_pump"] = DeviceSpec(
        name="pool_pump",
        on_kw=1.1,
        standby_kw=0.015,
        usage_peaks=(10.0,),      # midday filtration cycle
        usage_widths=(3.0,),
        usage_scale=0.7,
        off_at_night_prob=0.0,
    )


def main() -> None:
    register_pool_pump()
    spec = DEVICE_CATALOG["pool_pump"]
    print(f"registered {spec.name}: on={spec.on_kw} kW, standby={spec.standby_kw} kW")

    config = PFDRLConfig(
        data=DataConfig(
            n_residences=4,
            n_days=4,
            minutes_per_day=240,
            device_types=("tv", "light", "pool_pump"),
            heterogeneity=0.5,
            seed=1,
        ),
        forecast=ForecastConfig(model="lr", window=10, horizon=10),
        dqn=DQNConfig(
            hidden_width=16, learning_rate=0.005, learn_every=3,
            epsilon_decay_steps=800, reward_scale=1 / 30,
        ),
        federation=FederationConfig(beta_hours=6, gamma_hours=6),
        episodes=2,
    )
    result = PFDRLSystem(config).run()

    print(f"\nforecast accuracy       : {result.forecast_accuracy:.1%}")
    print(f"standby energy saved    : {result.ems.saved_standby_fraction:.1%}")
    # The pump's idle controller is the big win: 15 W x idle hours.
    per_res = result.ems.saved_standby_kwh
    print(f"saved per residence     : {np.round(per_res, 3)} kWh")


if __name__ == "__main__":
    main()
