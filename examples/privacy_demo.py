"""Privacy demo: why the paper avoids a cloud aggregator.

Shows the model-inversion threat concretely — a malicious aggregator
that observes a client's per-round weight updates can reconstruct the
client's private consumption window — and the standard clip+noise
mitigation degrading the attack, at a measurable accuracy cost.

Run:  python examples/privacy_demo.py
"""

import numpy as np

from repro.data import generate_neighborhood
from repro.federated.privacy import (
    clip_then_noise,
    leakage_of_update,
    rank1_input_reconstruction,
    reconstruction_similarity,
)
from repro.forecast import LinearRegressionForecaster, make_windows, normalize_power


def main() -> None:
    ds = generate_neighborhood(
        n_residences=1, n_days=2, minutes_per_day=240,
        device_types=("tv",), seed=13,
    )
    trace = ds[0]["tv"]
    series = normalize_power(trace.power_kw, trace.on_kw)
    X, y = make_windows(series, window=12, horizon=6, stride=6)

    # The client trains one round on ONE private window and "uploads".
    # Use the most structured window (a usage event) for the demo.
    idx = int(np.argmax(X.var(axis=1)))
    f = LinearRegressionForecaster(12, 6, ridge=0.1, blend=1.0, n_extra=0)
    before = f.get_weights()[0]
    f.fit(X[idx : idx + 1], y[idx : idx + 1])
    after = f.get_weights()[0]
    x_true = X[idx]

    print("== Malicious aggregator, raw update ==")
    sim = leakage_of_update(before[:-1], after[:-1], x_true)
    x_hat = rank1_input_reconstruction(after[:-1] - before[:-1])
    print(f"reconstruction similarity: {sim:.3f}")
    print(f"true window (normalised) : {np.round(x_true, 2)}")
    scale = np.linalg.norm(x_true)
    print(f"recovered window (scaled): {np.round(np.abs(x_hat) * scale, 2)}")

    print("\n== With clip + Gaussian noise on the broadcast ==")
    for noise in (0.0, 0.01, 0.05, 0.2):
        delta = after - before
        protected = clip_then_noise([delta], clip_norm=1.0, noise_std=noise, seed=7)[0]
        sim_p = reconstruction_similarity(
            x_true, rank1_input_reconstruction(protected[:-1])
        )
        print(f"noise_std={noise:<5}: reconstruction similarity {sim_p:.3f}")

    print("\nPFDRL's answer is architectural: no aggregator sees per-client")
    print("updates at all — broadcasts stay inside the neighbourhood mesh,")
    print("and the DRL personalization layers never leave the home.")


if __name__ == "__main__":
    main()
