"""Load-forecasting model comparison — LR / SVM / BP / LSTM under DFL.

Reproduces the Fig. 5/7 story interactively: trains each model with
decentralized federated learning day by day, prints the accuracy
trajectory, and contrasts federated vs purely-local training for the
best model.

Run:  python examples/forecast_comparison.py
"""

import numpy as np

from repro.config import FederationConfig, ForecastConfig
from repro.data import generate_neighborhood
from repro.federated.dfl import DFLTrainer


def main() -> None:
    dataset = generate_neighborhood(
        n_residences=5, n_days=5, minutes_per_day=240,
        device_types=("tv", "light", "microwave"), heterogeneity=0.35, seed=3,
    )
    train, test = dataset.slice_days(0, 4), dataset.slice_days(4, 5)
    fed = FederationConfig(beta_hours=6.0)

    print("Per-day held-out accuracy while training cumulatively (DFL):\n")
    print("day   " + "".join(f"{m:>8}" for m in ("lr", "svm", "bp", "lstm")))
    trainers = {}
    for model in ("lr", "svm", "bp", "lstm"):
        fc = ForecastConfig(model=model, window=10, horizon=10)
        trainers[model] = DFLTrainer(train, fc, fed, mode="decentralized", seed=0)
    for day in range(4):
        row = [f"{day + 1:>3}  "]
        for model, tr in trainers.items():
            tr.run_day()
            row.append(f"{tr.mean_accuracy(test):8.3f}")
        print("".join(row))

    print("\nFederated vs local training (lstm):")
    for mode in ("decentralized", "local"):
        fc = ForecastConfig(model="lstm", window=10, horizon=10)
        tr = DFLTrainer(train, fc, fed, mode=mode, seed=0)
        tr.run(4)
        acc = tr.mean_accuracy(test)
        msgs = tr.bus.stats.n_messages
        print(f"  {mode:>13}: accuracy={acc:.3f}  messages={msgs}")


if __name__ == "__main__":
    main()
