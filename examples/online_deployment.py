"""Deployment example: train → checkpoint → serve → hot-swap.

The real deployment path, end to end: train the PFDRL system with a
durable :class:`repro.persist.CheckpointStore`, load the final
checkpoint back as an immutable :class:`repro.serve.ModelSnapshot`
(config-digest-verified, read-only weights), and answer per-residence
"next-hour schedule" queries through a batching
:class:`repro.serve.ServingEngine` — then publish a new checkpoint
generation and hot-swap it in without dropping a query.  Every answer
is bit-identical to streaming the same readings through an
:class:`repro.core.OnlineController` minute by minute; the engine just
answers whole batches through one vectorised matmul.

Run:  python examples/online_deployment.py
"""

import tempfile

import numpy as np

from repro.config import (
    DataConfig,
    DQNConfig,
    FederationConfig,
    ForecastConfig,
    PFDRLConfig,
)
from repro.core import PFDRLSystem
from repro.data import generate_neighborhood
from repro.persist import CheckpointStore
from repro.serve import (
    ModelSnapshot,
    ScheduleQuery,
    ServingEngine,
    SnapshotWatcher,
    republish_latest,
)


def main() -> None:
    config = PFDRLConfig(
        data=DataConfig(
            n_residences=4, n_days=4, minutes_per_day=240,
            device_types=("tv", "light", "desktop"), heterogeneity=0.7, seed=21,
        ),
        forecast=ForecastConfig(model="lr", window=10, horizon=10),
        dqn=DQNConfig(hidden_width=16, learning_rate=0.005, learn_every=3,
                      epsilon_decay_steps=800, reward_scale=1 / 30),
        federation=FederationConfig(beta_hours=6, gamma_hours=6),
        episodes=2,
    )

    with tempfile.TemporaryDirectory() as ckpt_dir:
        # 1. Train with durable checkpoints (a hub would point this at
        #    persistent storage and pass resume=True across reboots).
        print("Training the PFDRL system (checkpointed)...")
        store = CheckpointStore(ckpt_dir, keep_last=3)
        PFDRLSystem(config).run(checkpoint_store=store)

        # 2. Load the final checkpoint as an immutable serving snapshot.
        #    The digest guard refuses checkpoints from any other config.
        snapshot = ModelSnapshot.load(store, config)
        engine = ServingEngine(snapshot)
        watcher = SnapshotWatcher(engine, store, config)
        print(f"Serving {snapshot.generation} "
              f"({len(snapshot.residences())} residences)")

        # 3. A fresh day of readings arrives; every home asks for its
        #    schedule.  One batch = one vectorised greedy evaluation.
        fresh = generate_neighborhood(config.data, seed=99)
        queries = [
            ScheduleQuery(
                residence_id=rid,
                readings={dev: trace.power_kw for dev, trace in fresh[rid]},
            )
            for rid in snapshot.residences()
        ]
        answers = engine.answer_batch(queries)
        for answer in answers:
            minutes = len(next(iter(answer.actions.values())))
            on = sum(int((a == 2).sum()) for a in answer.actions.values())
            off = sum(int((a == 0).sum()) for a in answer.actions.values())
            print(f"  residence {answer.residence_id}: {minutes} min, "
                  f"off/on decisions {off}/{on}, "
                  f"withheld {answer.saved_kwh:.3f} kWh "
                  f"[{answer.generation}]")

        total_standby = sum(
            t.standby_energy_kwh() for rid in snapshot.residences()
            for _, t in fresh[rid]
        )
        saved = sum(a.saved_kwh for a in answers)
        print(f"standby available : {total_standby:.3f} kWh")
        print(f"energy withheld   : {saved:.3f} kWh")

        # 4. Hot-swap: a retrain publishes a new checkpoint; the watcher
        #    loads it off the serving path and swaps atomically.  Same
        #    weights here, so the answers must not change — only the
        #    generation stamp does.
        republish_latest(store)
        assert watcher.check_once(), "watcher should pick up the new step"
        again = engine.answer_batch(queries)
        assert all(
            np.array_equal(a.actions[d], b.actions[d])
            for a, b in zip(answers, again) for d in a.actions
        ), "identical checkpoint must serve identical schedules"
        print(f"hot-swapped       : {answers[0].generation} -> "
              f"{again[0].generation} (answers unchanged, 0 dropped)")


if __name__ == "__main__":
    main()
