"""Deployment example: train with the pipeline, run the minute loop.

Trains the full PFDRL system, then extracts residence 0's trained
forecasters and DQN into an :class:`repro.core.OnlineController` and
streams a fresh day of readings through it minute by minute — the shape
of the loop a smart-home hub would actually run.

Run:  python examples/online_deployment.py
"""

import numpy as np

from repro.config import (
    DataConfig,
    DQNConfig,
    FederationConfig,
    ForecastConfig,
    PFDRLConfig,
)
from repro.core import DeviceNominals, OnlineController, PFDRLSystem
from repro.data import generate_neighborhood


def main() -> None:
    config = PFDRLConfig(
        data=DataConfig(
            n_residences=4, n_days=4, minutes_per_day=240,
            device_types=("tv", "light", "desktop"), heterogeneity=0.7, seed=21,
        ),
        forecast=ForecastConfig(model="lr", window=10, horizon=10),
        dqn=DQNConfig(hidden_width=16, learning_rate=0.005, learn_every=3,
                      epsilon_decay_steps=800, reward_scale=1 / 30),
        federation=FederationConfig(beta_hours=6, gamma_hours=6),
        episodes=2,
    )
    print("Training the PFDRL system...")
    system = PFDRLSystem(config)
    # A hub would persist training across reboots: pass a
    # repro.persist.CheckpointStore here (checkpoint_store=..., resume=True)
    # and the run snapshots complete state — forecasters, DQN, replay,
    # RNGs — every simulated day in the versioned, checksummed NPZ+manifest
    # format described in DESIGN.md §11, resuming bit-identically.
    system.run()
    assert system.dfl is not None and system.drl is not None

    # Residence 0's trained pieces become the deployed controller.
    rid = 0
    client = system.dfl.clients[rid]
    agent = system.drl.agents[rid]
    nominals = {
        dev: DeviceNominals(trace.on_kw, trace.standby_kw)
        for dev, trace in system.dataset[rid]
    }
    controller = OnlineController(
        forecasters=client.forecasters,
        agent=agent,
        nominals=nominals,
        minutes_per_day=config.data.minutes_per_day,
        t0=0,
    )

    # A fresh day arrives, one minute at a time.
    fresh = generate_neighborhood(config.data, seed=99)[rid]
    traces = {dev: trace.power_kw for dev, trace in fresh}
    print("Streaming one fresh day through the controller...")
    controller.run_trace(traces)

    stats = controller.stats
    print(f"\nminutes handled   : {stats.minutes}")
    print(f"forecasts made    : {stats.forecasts_made}")
    print(f"actions (off/sb/on): {stats.actions[0]} / {stats.actions[1]} / {stats.actions[2]}")
    total_standby = sum(t.standby_energy_kwh() for _, t in fresh)
    saved = sum(stats.saved_kwh.values())
    print(f"standby available : {total_standby:.3f} kWh")
    print(f"energy withheld   : {saved:.3f} kWh")


if __name__ == "__main__":
    main()
