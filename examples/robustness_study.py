"""Robustness study: the pipeline under sensor AND network failures.

Part 1 sweeps sensor-dropout and spike rates on the training data; part 2
sweeps communication faults on the federated fabric (message drops with
retransmission, agent churn) via :class:`repro.config.FaultConfig` with
quorum-gated aggregation.  Both report how forecast accuracy and standby
savings degrade — the deployment questions ("what happens when plugs
misbehave? when the WiFi does?") the paper leaves open.

Run:  python examples/robustness_study.py
"""

import numpy as np

from repro.config import (
    DataConfig,
    DQNConfig,
    FaultConfig,
    FederationConfig,
    ForecastConfig,
    PFDRLConfig,
)
from repro.core import PFDRLSystem
from repro.data import characterize, corrupt_dataset, generate_neighborhood


def print_table(header, rows):
    widths = [max(len(r[i]) for r in [header, *rows]) for i in range(len(header))]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def main() -> None:
    config = PFDRLConfig(
        data=DataConfig(
            n_residences=4, n_days=4, minutes_per_day=240,
            device_types=("tv", "light", "desktop"), heterogeneity=0.5, seed=33,
        ),
        forecast=ForecastConfig(model="lr", window=10, horizon=10),
        dqn=DQNConfig(hidden_width=16, learning_rate=0.005, learn_every=3,
                      epsilon_decay_steps=800, reward_scale=1 / 30),
        federation=FederationConfig(beta_hours=6, gamma_hours=6),
        episodes=2,
    )
    clean = generate_neighborhood(config.data)
    stats = characterize(clean)
    print("Workload:")
    print(stats.to_text())
    print()

    print("Part 1 — sensor corruption (dropout / spikes):")
    rows = []
    for dropout, spikes in [(0.0, 0.0), (0.05, 0.01), (0.15, 0.02), (0.3, 0.05)]:
        ds = (
            clean
            if dropout == spikes == 0.0
            else corrupt_dataset(clean, dropout_rate=dropout, spike_rate=spikes, seed=1)
        )
        result = PFDRLSystem(config, dataset=ds).run()
        rows.append(
            (f"{dropout:.0%}/{spikes:.0%}",
             f"{result.forecast_accuracy:.3f}",
             f"{result.ems.saved_standby_fraction:.3f}",
             f"{int(result.ems.comfort_violations.sum())}")
        )
    print_table(("dropout/spikes", "forecast_acc", "standby_saved", "violations"), rows)
    print("\nThe EMS degrades gracefully: savings track the fraction of")
    print("minutes whose readings survive, rather than collapsing.")

    print("\nPart 2 — communication faults (drop rate / agent churn):")
    rows = []
    for drop, churn in [(0.0, 0.0), (0.1, 0.0), (0.3, 0.0), (0.3, 0.2)]:
        faulty = config.replace(
            faults=FaultConfig(
                drop_rate=drop, crash_rate=churn, recovery_rate=0.5,
                quorum_fraction=0.5, staleness_horizon=2, seed=17,
            )
        )
        system = PFDRLSystem(faulty, dataset=clean)
        result = system.run()
        stats = system.dfl.bus.stats
        rows.append(
            (f"{drop:.0%}/{churn:.0%}",
             f"{result.forecast_accuracy:.3f}",
             f"{result.ems.saved_standby_fraction:.3f}",
             f"{stats.n_retransmits}",
             f"{stats.n_quorum_skips}")
        )
    print_table(
        ("drop/churn", "forecast_acc", "standby_saved", "retransmits", "quorum_skips"),
        rows,
    )
    print("\nQuorum-gated rounds fall back to local training when the")
    print("neighbourhood cannot be heard — accuracy stays bounded, and")
    print("every retry and skipped round is counted, not silent.")


if __name__ == "__main__":
    main()
