"""Neighbourhood EMS comparison — the paper's five methods head to head.

Runs Local / Cloud / FL / FRL / PFDRL on one shared synthetic
neighbourhood (Table 2's pipelines) and prints:

- held-out forecast accuracy and standby savings per method,
- communication and privacy cost (parameters broadcast, raw bytes
  uploaded to the cloud),
- the monetary value of PFDRL's savings under the fixed-rate and
  variable-rate Texas plans.

Run:  python examples/neighborhood_ems.py
"""

import numpy as np

from repro.baselines import METHODS, method_table, run_method
from repro.data import default_fixed_plan, default_variable_plan, generate_neighborhood
from repro.experiments.profiles import ems_profile


def main() -> None:
    profile = ems_profile(seed=7)
    config = profile.pfdrl_config()
    dataset = generate_neighborhood(config.data)
    print(f"Neighbourhood: {dataset.n_residences} residences x "
          f"{dataset.n_days:.0f} days x {len(dataset.device_types)} devices "
          f"({', '.join(dataset.device_types)})\n")

    print(method_table())
    print()

    rows = []
    results = {}
    for name in METHODS:
        r = run_method(name, config, dataset)
        results[name] = r
        rows.append(
            (name.upper(), f"{r.forecast_accuracy:.3f}",
             f"{r.saved_standby_fraction:.3f}",
             f"{r.saved_kwh_per_client:.3f}",
             f"{r.params_broadcast:,}", f"{r.data_bytes_uploaded:,}")
        )

    header = ("Method", "ForecastAcc", "StandbySaved", "kWh/client",
              "ParamsBcast", "RawBytesUp")
    widths = [max(len(str(row[i])) for row in [header, *rows]) for i in range(6)]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))

    # Price PFDRL's savings under both plans.
    pf = results["pfdrl"]
    saved_kw = pf.ems.saved_kw.mean(axis=0)  # per-client average, per minute
    mpd = config.data.minutes_per_day
    mph = max(1, mpd // 24)
    minutes = np.arange(saved_kw.shape[0])
    hours = (minutes % mpd) / mph
    days = minutes // mpd
    delta_kwh = saved_kw / 60.0
    for plan in (default_fixed_plan(), default_variable_plan()):
        dollars = plan.cost(delta_kwh, hours, days)
        print(f"\nPFDRL savings under the {plan.name} plan: "
              f"${dollars:.4f} per client per test period")


if __name__ == "__main__":
    main()
