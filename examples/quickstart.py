"""Quickstart: the full PFDRL pipeline in ~30 lines.

Generates a small synthetic neighbourhood, trains the decentralized
federated load forecasters (Algorithm 1), trains the personalized
federated DQN energy managers (Algorithm 2), and reports the held-out
forecast accuracy and standby-energy savings.

Run:  python examples/quickstart.py
      python examples/quickstart.py --telemetry run.jsonl   # + run journal
"""

import argparse

from repro.config import (
    DataConfig,
    DQNConfig,
    FederationConfig,
    ForecastConfig,
    PFDRLConfig,
)
from repro.core import PFDRLSystem
from repro.obs import RunJournal, Telemetry


def main(telemetry_path: str | None = None) -> None:
    config = PFDRLConfig(
        data=DataConfig(
            n_residences=6,
            n_days=4,
            minutes_per_day=240,  # compressed day: one "hour" = 10 min
            device_types=("tv", "light", "fridge", "desktop"),
            heterogeneity=0.7,
            seed=42,
        ),
        forecast=ForecastConfig(model="lr", window=10, horizon=10),
        dqn=DQNConfig(
            hidden_width=16, learning_rate=0.005, learn_every=3,
            epsilon_decay_steps=800, reward_scale=1 / 30,
        ),
        federation=FederationConfig(alpha=6, beta_hours=6, gamma_hours=6),
        episodes=2,
    )

    telemetry = Telemetry(journal=RunJournal()) if telemetry_path else None

    print("Running the PFDRL pipeline (DFL forecasting -> PFDRL EMS)...")
    result = PFDRLSystem(config, telemetry=telemetry).run()

    print(f"\ntrain days: {result.n_train_days}   test days: {result.n_test_days}")
    print(f"held-out forecast accuracy : {result.forecast_accuracy:.1%}")
    print(f"standby energy saved       : {result.ems.saved_standby_fraction:.1%}")
    print(f"saved kWh per residence    : "
          f"{result.ems.saved_standby_kwh.mean():.3f} kWh/test-day")
    print(f"comfort violations (min)   : {int(result.ems.comfort_violations.sum())}")

    if telemetry is not None and telemetry.journal is not None:
        n = telemetry.journal.write(telemetry_path)
        print(f"telemetry journal          : {n} events -> {telemetry_path}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--telemetry", metavar="PATH", default=None,
                        help="write a JSONL run journal to PATH")
    # parse_known_args: the test harness re-runs this file under its own
    # argv; unknown flags must not abort the example.
    args, _ = parser.parse_known_args()
    main(args.telemetry)
